//! E6 — Hybrid adaptive indexing (PVLDB 2011): the initialization/convergence
//! trade-off across the hybrid crack/sort/radix algorithms, plus plain
//! cracking, adaptive merging and a full sort as the endpoints of the design
//! space. Also serves as the crack-in-two vs. crack-in-three /
//! organization-choice ablation called out in DESIGN.md.

use aidx_bench::{assert_checksums_match, run_strategy_facade, HarnessConfig, StrategyRun};
use aidx_core::strategy::{HybridKind, StrategyKind};
use aidx_workloads::data::{generate_keys, DataDistribution};
use aidx_workloads::query::{QueryWorkload, WorkloadKind};

fn main() {
    let config = HarnessConfig::default();
    println!(
        "# E6 hybrid adaptive indexing — {} rows, {} queries, {:.1}% selectivity",
        config.rows,
        config.queries,
        config.selectivity * 100.0
    );
    let keys = generate_keys(
        config.rows,
        DataDistribution::UniformPermutation,
        config.seed,
    );
    let workload = QueryWorkload::generate(
        WorkloadKind::UniformRandom,
        config.queries,
        0,
        config.rows as i64,
        config.selectivity,
        config.seed + 6,
    );

    let strategies = [
        StrategyKind::Cracking,
        StrategyKind::Hybrid {
            algorithm: HybridKind::CrackCrack,
        },
        StrategyKind::Hybrid {
            algorithm: HybridKind::CrackSort,
        },
        StrategyKind::Hybrid {
            algorithm: HybridKind::CrackRadix,
        },
        StrategyKind::Hybrid {
            algorithm: HybridKind::RadixRadix,
        },
        StrategyKind::Hybrid {
            algorithm: HybridKind::SortSort,
        },
        StrategyKind::Hybrid {
            algorithm: HybridKind::SortRadix,
        },
        StrategyKind::AdaptiveMerging { run_size: 1 << 16 },
        StrategyKind::FullSort,
    ];
    // every strategy runs end-to-end through the Database/Session facade
    let runs: Vec<StrategyRun> = strategies
        .iter()
        .map(|&s| run_strategy_facade(s, &keys, &workload))
        .collect();
    assert_checksums_match(&runs);

    let scan_equivalent = config.rows as f64; // one pass over the column, in work units
    let full_index_cost = runs.last().map(|r| r.effort.tail_mean(100)).unwrap_or(1.0);
    println!(
        "\n{:<22} {:>16} {:>20} {:>20} {:>18} {:>14}",
        "technique",
        "first q (ms)",
        "first-q effort/scan",
        "queries to converge",
        "total effort",
        "converged?"
    );
    for run in &runs {
        let first_ms = run.time_ns.first_query_cost().unwrap_or(0.0) / 1e6;
        let overhead = run
            .effort
            .first_query_overhead(scan_equivalent)
            .unwrap_or(0.0);
        let convergence = run
            .effort
            .queries_to_convergence(full_index_cost, 1.0, 10)
            .map_or("never".to_owned(), |q| q.to_string());
        println!(
            "{:<22} {:>16.2} {:>20.2} {:>20} {:>18.2e} {:>14}",
            run.label,
            first_ms,
            overhead,
            convergence,
            run.effort.total_cost(),
            run.converged
        );
    }
    println!(
        "\nshape check (PVLDB 2011): crack-initialized hybrids have the cheapest first \
         query; sort-initialized hybrids have the most expensive first query and the \
         fastest convergence; sorted/radix final partitions converge faster than the \
         cracked final; plain cracking is the laziest of all."
    );
}
