//! E14 — Serving the engine over the wire: concurrent clients, admission
//! control, and overload shedding.
//!
//! Every other experiment drives the engine embedded, which means query
//! concurrency is whatever one process's benchmark loop produces. This
//! harness drives it the way the multi-core/concurrency follow-up papers
//! say adaptive indexing must ultimately be exercised: many independent
//! clients racing their index refinements through a shared server. It
//! measures three things:
//!
//! 1. **Sustained load** — `AIDX_CLIENTS` concurrent connections (default
//!    32) each run a workload-zoo query mix (uniform, skewed, sequential,
//!    shifting-focus, point; one kind per client, round-robin) against
//!    `aidx-server`, a slice of them submitted as batches. Reported per
//!    phase, straight from the engine's snapshot-diffing reporter
//!    ([`Database::report_tick`]): windowed qps and windowed p50/p99 query
//!    latency over exactly the phase's interval, plus overload-shed counts.
//! 2. **Saturation** — the same mix against a server whose admission budget
//!    is 1 in-flight request, plus one "hog" connection looping batches
//!    (each held under a single admission permit for its whole duration,
//!    keeping the gate occupied no matter how fast individual queries
//!    run). The gate must *shed* (typed OVERLOADED replies, counted)
//!    rather than queue or hang: every client runs with a reply timeout,
//!    so a hang fails the run.
//! 3. **Wire fidelity** — results fetched over the wire are byte-identical
//!    to the same queries executed on an embedded [`aidx_core::Session`]
//!    against the same database.
//!
//! Acceptance (asserted): ≥ 32 clients sustained with nonzero completed
//! queries and zero protocol errors; nonzero sheds and zero hangs under
//! saturation; byte-identical wire results.

use aidx_bench::HarnessConfig;
use aidx_columnstore::column::Column;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Key;
use aidx_core::strategy::StrategyKind;
use aidx_core::{Database, Query};
use aidx_server::{Client, ClientError, Server, ServerConfig, WireResult};
use aidx_workloads::data::{generate_keys, DataDistribution};
use aidx_workloads::query::{QueryWorkload, WorkloadKind};
use std::time::{Duration, Instant};

/// The workload zoo each client draws from, round-robin by client index.
fn zoo_kind(client: usize) -> WorkloadKind {
    match client % 5 {
        0 => WorkloadKind::UniformRandom,
        1 => WorkloadKind::Skewed {
            hot_regions: 16,
            exponent: 1.3,
        },
        2 => WorkloadKind::Sequential,
        3 => WorkloadKind::ShiftingFocus {
            period: 16,
            focus_fraction: 0.1,
        },
        _ => WorkloadKind::Point,
    }
}

fn zoo_queries(client: usize, count: usize, rows: usize, selectivity: f64) -> Vec<Query> {
    QueryWorkload::generate(
        zoo_kind(client),
        count,
        0,
        rows as Key,
        selectivity,
        0xE14 + client as u64,
    )
    .iter()
    .map(|q| Query::table("data").range("k", q.low, q.high))
    .collect()
}

fn build_db(rows: usize, seed: u64) -> Database {
    let db = Database::new(StrategyKind::Cracking);
    let keys = generate_keys(rows, DataDistribution::UniformPermutation, seed);
    db.create_table(
        "data",
        Table::from_columns(vec![("k", Column::from_i64(keys))]).expect("one-column table"),
    )
    .expect("fresh database");
    db
}

/// What one client thread brings home. Latencies are not collected here at
/// all: the phase summary reads the engine's own `engine.query_ns`
/// histogram through the snapshot-diffing reporter, so the numbers printed
/// are exactly what an operator tailing [`Database::report_tick`] would
/// see — no per-thread vectors, no hand-rolled aggregation.
#[derive(Debug, Default)]
struct ClientReport {
    completed: u64,
    sheds_absorbed: u64,
    shed_rejections: u64,
    protocol_errors: u64,
    hangs: u64,
}

/// Drive one connection through its query list. `reply_timeout` arms the
/// zero-hang guarantee; `retries` > 0 lets the client absorb sheds with
/// backoff, `retries` == 0 records them and moves on. With `min_duration`,
/// the list is replayed until that much wall-clock has elapsed (the
/// saturation phase needs attempts spread across many scheduler timeslices,
/// not one quick burst that can slip between two hog batches).
fn drive_client(
    addr: std::net::SocketAddr,
    queries: &[Query],
    batch_size: usize,
    reply_timeout: Duration,
    retries: usize,
    min_duration: Option<Duration>,
) -> ClientReport {
    let mut report = ClientReport::default();
    let Ok(mut client) = Client::connect(addr) else {
        report.protocol_errors += 1;
        return report;
    };
    if client.set_reply_timeout(Some(reply_timeout)).is_err() {
        report.protocol_errors += 1;
        return report;
    }
    let phase_start = Instant::now();
    let mut i = 0;
    loop {
        if i >= queries.len() {
            match min_duration {
                Some(d) if phase_start.elapsed() < d => i = 0, // another pass
                _ => break,
            }
        }
        // a slice of the stream goes through the batched path so the
        // harness exercises single-permit amortization alongside per-query
        // admission
        if batch_size > 1 && i % (4 * batch_size) == 0 && i + batch_size <= queries.len() {
            let chunk = &queries[i..i + batch_size];
            match client.batch(chunk) {
                Ok(outcomes) => {
                    report.completed += outcomes.iter().filter(|o| o.is_ok()).count() as u64;
                    report.protocol_errors += outcomes.iter().filter(|o| o.is_err()).count() as u64;
                }
                Err(e) => record_failure(&mut report, e),
            }
            i += batch_size;
            continue;
        }
        match client.query_with_retry(&queries[i], retries, Duration::from_micros(200)) {
            Ok((_result, sheds)) => {
                report.completed += 1;
                report.sheds_absorbed += sheds as u64;
            }
            Err(e) => record_failure(&mut report, e),
        }
        i += 1;
    }
    report
}

fn record_failure(report: &mut ClientReport, error: ClientError) {
    match error {
        ClientError::Overloaded { .. } => report.shed_rejections += 1,
        ClientError::Io(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            report.hangs += 1
        }
        _ => report.protocol_errors += 1,
    }
}

/// Format a histogram quantile (upper-bucket-bound nanoseconds) as
/// milliseconds; "-" when everything was shed and nothing completed.
fn quantile_ms(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.3}", ns as f64 / 1e6),
        None => "-".to_owned(),
    }
}

struct PhaseOutcome {
    completed: u64,
    sheds: u64,
    hangs: u64,
    protocol_errors: u64,
}

/// A "hog" connection: loops batches back-to-back until asked to stop.
/// Each batch executes under one admission permit held for the batch's
/// whole duration, so against a budget-1 server the hog keeps the gate
/// occupied nearly continuously — forcing the other clients' requests to
/// collide with it no matter how fast individual queries are.
fn drive_hog(
    addr: std::net::SocketAddr,
    rows: usize,
    stop: &std::sync::atomic::AtomicBool,
    ready: &std::sync::atomic::AtomicBool,
) -> ClientReport {
    use std::sync::atomic::Ordering;
    let mut report = ClientReport::default();
    // whatever happens below, never leave the phase waiting on the
    // ready-handshake
    struct ReadyOnExit<'a>(&'a std::sync::atomic::AtomicBool);
    impl Drop for ReadyOnExit<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    let _ready = ReadyOnExit(ready);
    let Ok(mut client) = Client::connect(addr) else {
        report.protocol_errors += 1;
        return report;
    };
    if client
        .set_reply_timeout(Some(Duration::from_secs(10)))
        .is_err()
    {
        report.protocol_errors += 1;
        return report;
    }
    // many narrow ranges scattered over the domain: the permit is held for
    // the whole 1024-query batch (milliseconds even on a converged index)
    // while each reply stays small (results carry their position lists, so
    // wide ranges would blow the reply-frame cap)
    let width: Key = 64;
    let batch: Vec<Query> = (0..1024)
        .map(|i: Key| {
            let low = (i * 12_289) % (rows as Key - width).max(1);
            Query::table("data")
                .range("k", low, low + width)
                .aggregate(aidx_core::Aggregation::Count, "k")
        })
        .collect();
    while !stop.load(Ordering::Relaxed) {
        match client.batch(&batch) {
            Ok(outcomes) => {
                report.completed += outcomes.iter().filter(|o| o.is_ok()).count() as u64;
                report.protocol_errors += outcomes.iter().filter(|o| o.is_err()).count() as u64;
                ready.store(true, Ordering::Release);
            }
            Err(ClientError::Overloaded { .. }) => report.sheds_absorbed += 1,
            Err(e) => {
                record_failure(&mut report, e);
                return report;
            }
        }
    }
    report
}

/// Knobs for one load phase.
struct PhaseSpec<'a> {
    label: &'a str,
    clients: usize,
    queries_per_client: usize,
    rows: usize,
    selectivity: f64,
    retries: usize,
    with_hog: bool,
    min_duration: Option<Duration>,
}

/// Run `spec.clients` concurrent connections against `server` and print one
/// result row sourced from the engine's reporter: a [`Database::report_tick`]
/// brackets the phase, and the printed qps and p50/p99 are the resulting
/// [`aidx_core::SnapshotDelta`]'s windowed `engine.queries_served` rate and
/// windowed `engine.query_ns` quantiles — the phase is one reporter
/// interval. With `with_hog`, one extra connection loops permit-holding
/// batches for the duration of the phase (see [`drive_hog`]).
fn run_phase(server: &Server, db: &Database, spec: PhaseSpec<'_>) -> PhaseOutcome {
    let PhaseSpec {
        label,
        clients,
        queries_per_client,
        rows,
        selectivity,
        retries,
        with_hog,
        min_duration,
    } = spec;
    let addr = server.local_addr();
    let reply_timeout = Duration::from_secs(10);
    let stop_hog = std::sync::atomic::AtomicBool::new(false);
    let hog_ready = std::sync::atomic::AtomicBool::new(false);
    // open the reporter interval: the phase's own delta starts here
    db.report_tick();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let hog = with_hog.then(|| {
            let (stop_hog, hog_ready) = (&stop_hog, &hog_ready);
            scope.spawn(move || drive_hog(addr, rows, stop_hog, hog_ready))
        });
        if with_hog {
            // don't release the fleet until the hog has pushed a whole
            // batch through — otherwise a fast fleet can finish before the
            // hog ever contends for the permit
            let deadline = Instant::now() + Duration::from_secs(10);
            while !hog_ready.load(std::sync::atomic::Ordering::Acquire) && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let queries = zoo_queries(c, queries_per_client, rows, selectivity);
                    // sequential clients batch; others go query-at-a-time
                    let batch_size = if c % 5 == 2 { 8 } else { 1 };
                    drive_client(
                        addr,
                        &queries,
                        batch_size,
                        reply_timeout,
                        retries,
                        min_duration,
                    )
                })
            })
            .collect();
        let mut reports: Vec<ClientReport> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        stop_hog.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(hog) = hog {
            reports.push(hog.join().expect("hog thread panicked"));
        }
        reports
    });
    // close the reporter interval: this delta covers exactly the phase
    let delta = db
        .report_tick()
        .expect("the opening tick primed the reporter");
    let qps = delta.counter_rate("engine.queries_served").unwrap_or(0.0);
    let latency = delta.histogram("engine.query_ns");

    let completed: u64 = reports.iter().map(|r| r.completed).sum();
    let sheds_absorbed: u64 = reports.iter().map(|r| r.sheds_absorbed).sum();
    let shed_rejections: u64 = reports.iter().map(|r| r.shed_rejections).sum();
    let hangs: u64 = reports.iter().map(|r| r.hangs).sum();
    let protocol_errors: u64 = reports.iter().map(|r| r.protocol_errors).sum();
    let server_sheds = server.stats().requests_shed;
    // every shed the server counted surfaced at exactly one client as a
    // typed OVERLOADED (absorbed by retry or reported) — nothing was
    // silently dropped
    assert_eq!(
        sheds_absorbed + shed_rejections,
        server_sheds,
        "client-observed sheds must match the server's shed counter"
    );

    println!(
        "{:<12} {:>8} {:>10} {:>10.0} {:>10} {:>10} {:>12} {:>8} {:>8}",
        label,
        clients,
        completed,
        qps,
        quantile_ms(latency.and_then(|h| h.p50())),
        quantile_ms(latency.and_then(|h| h.p99())),
        server_sheds,
        hangs,
        protocol_errors,
    );
    PhaseOutcome {
        completed,
        sheds: server_sheds,
        hangs,
        protocol_errors,
    }
}

/// Phase 3: the same queries over the wire and on an embedded session must
/// produce byte-identical encodings.
fn assert_wire_fidelity(server: &Server, db: &Database, rows: usize, selectivity: f64) {
    let session = db.session();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut checked = 0usize;
    for c in 0..5 {
        for query in zoo_queries(c, 8, rows, selectivity) {
            let wire = client.query(&query).expect("wire query");
            let embedded =
                WireResult::from_query_result(&session.execute(&query).expect("embedded query"));
            assert_eq!(
                wire.encoded(),
                embedded.encoded(),
                "wire and embedded results diverge for {query:?}"
            );
            checked += 1;
        }
    }
    println!("\nwire fidelity: {checked} queries byte-identical to the embedded session");
}

fn main() {
    let config = HarnessConfig::default();
    let rows = config.rows.min(500_000);
    let clients = std::env::var("AIDX_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32usize);
    let queries_per_client = (config.queries / clients.max(1)).max(8);
    let selectivity = config.selectivity;

    println!(
        "# E14 server load — {rows} rows, {clients} clients x {queries_per_client} queries, \
         selectivity {selectivity}"
    );
    println!(
        "\n{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "phase",
        "clients",
        "completed",
        "qps",
        "p50 ms",
        "p99 ms",
        "server-sheds",
        "hangs",
        "protoerr"
    );

    // phase 1: sustained load, generous admission budget — sheds possible
    // but rare, so clients absorb them with retries
    let db = build_db(rows, config.seed);
    let server = Server::start(
        db.clone(),
        ServerConfig::localhost()
            .with_max_connections(clients + 8)
            .with_max_in_flight(clients.max(4)),
    )
    .expect("bind localhost");
    // retries unbounded: the generous budget makes sheds rare, the reply
    // timeout still converts any hang into a counted failure, and an
    // exhausted-retry error would lose its absorbed-shed count and break
    // the client/server shed-accounting cross-check
    let sustained = run_phase(
        &server,
        &db,
        PhaseSpec {
            label: "sustained",
            clients,
            queries_per_client,
            rows,
            selectivity,
            retries: usize::MAX,
            with_hog: false,
            min_duration: None,
        },
    );
    assert!(sustained.completed > 0, "sustained phase completed nothing");
    assert_eq!(
        sustained.protocol_errors, 0,
        "sustained phase saw protocol errors"
    );
    assert_eq!(sustained.hangs, 0, "sustained phase hung");

    // STATS cross-check: with every client joined, the wire snapshot, the
    // embedded Server::stats() view, and the clients' own completion count
    // must all agree — the three views read the same registry
    let mut stats_client = Client::connect(server.local_addr()).expect("connect for STATS");
    let wire_snapshot = stats_client.stats().expect("STATS reply");
    let wire_served = wire_snapshot
        .counter("server.queries_served")
        .expect("server.queries_served in STATS reply");
    assert_eq!(
        wire_served,
        server.stats().queries_served,
        "STATS opcode and Server::stats() diverged"
    );
    assert_eq!(
        wire_served, sustained.completed,
        "server-side queries_served must match the clients' completion count"
    );
    println!(
        "\nSTATS cross-check: wire queries_served = embedded stats() = client count = {wire_served}"
    );

    // phase 3 runs against the warmed sustained-phase server so fidelity is
    // checked on a cracked (partially refined) index, not a cold one
    assert_wire_fidelity(&server, &db, rows, selectivity);
    server.shutdown();

    // phase 2: saturation — one in-flight request for the whole fleet,
    // plus a hog connection whose batches keep that single permit held, so
    // the fleet's requests must collide with it. No retries: every shed
    // surfaces, and the reply timeout turns any hang into a counted
    // failure.
    let db = build_db(rows, config.seed);
    let server = Server::start(
        db.clone(),
        ServerConfig::localhost()
            .with_max_connections(clients + 8)
            .with_max_in_flight(1),
    )
    .expect("bind localhost");
    let saturated = run_phase(
        &server,
        &db,
        PhaseSpec {
            label: "saturated",
            clients,
            queries_per_client,
            rows,
            selectivity,
            retries: 0,
            with_hog: true,
            // replay the workload for a full second: saturation needs
            // attempts spread across many hog batches and scheduler
            // timeslices, not one burst that can land between two batches
            // on a small machine
            min_duration: Some(Duration::from_secs(1)),
        },
    );
    server.shutdown();
    assert!(saturated.completed > 0, "saturated phase completed nothing");
    assert!(
        saturated.sheds > 0,
        "saturation must shed: budget 1, {clients} clients + a batch hog, 0 sheds"
    );
    assert_eq!(saturated.hangs, 0, "saturated phase hung (timeout hit)");
    assert_eq!(
        saturated.protocol_errors, 0,
        "saturated phase saw protocol errors"
    );

    println!(
        "\nacceptance: {} clients sustained, {} sheds under saturation, 0 hangs, 0 protocol errors",
        clients, saturated.sheds
    );
}
