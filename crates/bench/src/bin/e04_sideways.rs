//! E4 — Sideways cracking (SIGMOD 2009): multi-column selections with tuple
//! reconstruction. Compares (a) selection cracking + late materialization
//! fetches against (b) aligned cracker maps, for 1–4 projected attributes,
//! and shows the partial-materialization property (unqueried tails cost
//! nothing).

use aidx_bench::HarnessConfig;
use aidx_columnstore::ops::project;
use aidx_cracking::selection::CrackedIndex;
use aidx_cracking::sideways::MapSet;
use aidx_workloads::data::generate_multi_column_table;
use aidx_workloads::query::{QueryWorkload, WorkloadKind};
use std::time::Instant;

fn main() {
    let config = HarnessConfig::default();
    let rows = config.rows.min(2_000_000);
    let queries = config.queries.min(500);
    let tail_count = 4;
    println!(
        "# E4 sideways cracking — {} rows, {} queries, {:.2}% selectivity, {} tail columns",
        rows,
        queries,
        config.selectivity * 100.0,
        tail_count
    );
    let table = generate_multi_column_table(rows, tail_count, config.seed);
    let head: Vec<i64> = table.column("a").unwrap().as_i64().unwrap().to_vec();
    let workload = QueryWorkload::generate(
        WorkloadKind::UniformRandom,
        queries,
        0,
        rows as i64,
        config.selectivity,
        config.seed + 4,
    );

    println!(
        "\n{:<12} {:>26} {:>26}",
        "#projected", "crack + late mat. (ms)", "sideways cracker maps (ms)"
    );
    for projected in 1..=tail_count {
        let tails: Vec<String> = (0..projected).map(|t| format!("b{t}")).collect();
        let tail_refs: Vec<&str> = tails.iter().map(String::as_str).collect();
        let tail_columns: Vec<_> = tail_refs
            .iter()
            .map(|name| table.column(name).unwrap())
            .collect();

        // (a) selection cracking + late materialization of every tail
        let mut plain: CrackedIndex = CrackedIndex::from_keys(&head);
        let start = Instant::now();
        let mut checksum_naive = 0i64;
        for q in workload.iter() {
            let positions = plain.query_range(q.low, q.high).positions();
            for column in &tail_columns {
                checksum_naive += project::fetch_i64(column, &positions).iter().sum::<i64>();
            }
        }
        let naive = start.elapsed();

        // (b) sideways cracking with aligned maps
        let mut maps = MapSet::from_table(&table, "a").expect("integer columns");
        let start = Instant::now();
        let mut checksum_sideways = 0i64;
        for q in workload.iter() {
            let answer = maps.select_project(q.low, q.high, &tail_refs);
            for tail in &answer.tails {
                checksum_sideways += tail.iter().sum::<i64>();
            }
        }
        let sideways = start.elapsed();
        assert_eq!(checksum_naive, checksum_sideways);

        println!(
            "{:<12} {:>26.1} {:>26.1}",
            projected,
            naive.as_secs_f64() * 1e3,
            sideways.as_secs_f64() * 1e3
        );
        if projected == tail_count {
            println!(
                "\nmaterialized maps at the end: {} of {} available tails (partial sideways cracking: only queried tails exist)",
                maps.materialized_maps(),
                maps.tail_names().len()
            );
        }
    }
    println!(
        "\nshape check: the gap grows with the number of projected attributes — every \
         extra tail adds one random-access fetch pass to the naive plan but only one \
         aligned sequential map read to sideways cracking."
    );
}
