//! E13 — Background maintenance: fragmentation, compaction, and the
//! scan-latency curve.
//!
//! Heavy insert churn under live snapshots fragments a column: every
//! copy-on-write append seals the shared tail early (so the append copies
//! nothing), leaving a trail of undersized sealed chunks. Scans then pay
//! per-chunk overhead proportional to the chunk *count*, not the row count.
//! The maintenance subsystem's adaptive chunk compaction merges fragment
//! runs back into full `segment_capacity` chunks, publishing each compacted
//! table under a reconcilable epoch so adaptive indexes survive.
//!
//! This harness drives that full arc and prints the curve:
//!
//! 1. **Fragmentation** — churn batches of inserts (each under a live
//!    snapshot) and, after every batch, record the sealed-chunk count and
//!    the median latency of a raw zone-pruned range scan.
//! 2. **Compaction** — run `Database::compact()` and measure it.
//! 3. **Recovery** — record chunk count and scan latency again.
//!
//! Asserted invariants (the ISSUE 5 acceptance criteria):
//! * churn produces at least 8× more sealed chunks than ideal;
//! * compaction restores the chunk count to within 2× of ideal;
//! * query position sets are byte-identical before and after compaction,
//!   and identical to a maintenance-free engine holding the same rows;
//! * queries racing a background compaction thread also answer identically.

use aidx_bench::HarnessConfig;
use aidx_columnstore::column::Column;
use aidx_columnstore::ops::select::{scan_select_segment, Predicate};
use aidx_columnstore::table::Table;
use aidx_columnstore::types::{Key, RowId, Value};
use aidx_core::strategy::StrategyKind;
use aidx_core::Database;
use aidx_maintenance::MaintenanceConfig;
use std::time::Instant;

const SEGMENT_CAPACITY: usize = 1024;
const CHURN_BATCHES: usize = 8;

/// Median-of-five latency of a raw zone-pruned range scan over the current
/// key column (raw, so adaptive indexes cannot hide the physical layout).
fn scan_latency_ms(db: &Database, low: Key, high: Key) -> (f64, usize) {
    let snapshot = db.table_snapshot("data").expect("table exists");
    let segment = snapshot
        .column("k")
        .expect("key column")
        .as_i64()
        .expect("int64 column");
    let mut times = Vec::with_capacity(5);
    let mut hits = 0;
    for _ in 0..5 {
        let start = Instant::now();
        let (positions, _) = scan_select_segment(segment, &Predicate::range(low, high));
        times.push(start.elapsed().as_secs_f64() * 1e3);
        hits = positions.len();
    }
    times.sort_by(f64::total_cmp);
    (times[2], hits)
}

fn chunk_count(db: &Database) -> usize {
    db.table_snapshot("data")
        .expect("table exists")
        .column("k")
        .expect("key column")
        .as_i64()
        .expect("int64 column")
        .sealed_chunk_count()
}

fn positions_of(db: &Database, low: Key, high: Key) -> Vec<RowId> {
    db.session()
        .query("data")
        .range("k", low, high)
        .execute()
        .expect("range query")
        .positions()
        .clone()
        .into_vec()
}

fn build_db(keys: &[Key], background: bool) -> Database {
    let db = Database::builder()
        .default_strategy(StrategyKind::Cracking)
        .segment_capacity(SEGMENT_CAPACITY)
        .maintenance(MaintenanceConfig {
            background,
            tick_interval: std::time::Duration::from_millis(1),
            ..Default::default()
        })
        .try_build()
        .expect("valid configuration");
    db.create_table(
        "data",
        Table::from_columns(vec![("k", Column::from_i64(keys.to_vec()))])
            .expect("single-column table"),
    )
    .expect("fresh database");
    db
}

/// Insert `count` rows, each under a freshly taken live snapshot, so every
/// append copy-on-writes and seals the shared tail early.
fn churn(db: &Database, start_key: Key, count: usize) {
    let session = db.session();
    for i in 0..count {
        let _snapshot = db.table_snapshot("data").expect("table exists");
        session
            .insert_row("data", &[Value::Int64(start_key + i as Key)])
            .expect("append");
    }
}

fn main() {
    let config = HarnessConfig::default();
    let rows = config.rows.min(400_000);
    let churn_per_batch = (rows / 8).clamp(64, 8_192);
    let keys: Vec<Key> = (0..rows as Key).collect();
    let (low, high) = (rows as Key / 4, rows as Key / 2);

    println!(
        "# E13 chunk compaction — {rows} seed rows, capacity {SEGMENT_CAPACITY}, \
         {CHURN_BATCHES} churn batches x {churn_per_batch} inserts under live snapshots"
    );
    println!(
        "\n{:<24} {:>12} {:>12} {:>14} {:>12}",
        "phase", "rows", "chunks", "scan ms", "hits"
    );

    let db = build_db(&keys, false);
    let (latency, hits) = scan_latency_ms(&db, low, high);
    println!(
        "{:<24} {:>12} {:>12} {:>14.3} {:>12}",
        "seed",
        rows,
        chunk_count(&db),
        latency,
        hits
    );

    // 1. fragmentation curve
    for batch in 0..CHURN_BATCHES {
        churn(
            &db,
            (rows + batch * churn_per_batch) as Key,
            churn_per_batch,
        );
        let (latency, hits) = scan_latency_ms(&db, low, high);
        println!(
            "{:<24} {:>12} {:>12} {:>14.3} {:>12}",
            format!("churn-{}", batch + 1),
            rows + (batch + 1) * churn_per_batch,
            chunk_count(&db),
            latency,
            hits
        );
    }
    let total_rows = rows + CHURN_BATCHES * churn_per_batch;
    let ideal = total_rows.div_ceil(SEGMENT_CAPACITY);
    let fragmented_chunks = chunk_count(&db);
    assert!(
        fragmented_chunks >= 8 * ideal,
        "churn must fragment >= 8x over ideal ({fragmented_chunks} vs {ideal})"
    );
    let (fragmented_latency, _) = scan_latency_ms(&db, low, high);
    let reference = positions_of(&db, low, high);

    // 2. compaction
    let start = Instant::now();
    let report = db.compact();
    let compact_ms = start.elapsed().as_secs_f64() * 1e3;
    let (latency, hits) = scan_latency_ms(&db, low, high);
    println!(
        "{:<24} {:>12} {:>12} {:>14.3} {:>12}",
        "compacted",
        total_rows,
        chunk_count(&db),
        latency,
        hits
    );
    println!(
        "\ncompact(): {} rows merged, {} chunks removed, {} publishes, \
         {} indexes reconciled, {} ticks, {compact_ms:.2} ms",
        report.rows_merged,
        report.chunks_removed,
        report.compactions_published,
        report.indexes_reconciled,
        report.ticks
    );

    // 3. invariants
    let compacted_chunks = chunk_count(&db);
    assert!(
        compacted_chunks <= 2 * ideal,
        "compaction must restore chunk count to within 2x of ideal \
         ({compacted_chunks} vs {ideal})"
    );
    assert_eq!(
        positions_of(&db, low, high),
        reference,
        "compaction must not change any answer"
    );
    println!(
        "chunk count: {fragmented_chunks} fragmented -> {compacted_chunks} compacted \
         (ideal {ideal}); scan latency {fragmented_latency:.3} ms -> {latency:.3} ms"
    );

    // 4. queries racing a background compaction thread answer byte-identically
    // to a maintenance-free engine holding the same rows
    let racing = build_db(&keys, true);
    let quiet = build_db(&keys, false);
    churn(&racing, rows as Key, churn_per_batch);
    churn(&quiet, rows as Key, churn_per_batch);
    let mut checked = 0usize;
    for q in 0..40 {
        let qlow = ((q * 7919) % rows) as Key;
        let qhigh = qlow + (rows / 50) as Key;
        let concurrent = positions_of(&racing, qlow, qhigh);
        let serial = positions_of(&quiet, qlow, qhigh);
        assert_eq!(
            concurrent, serial,
            "query [{qlow},{qhigh}) diverged under background compaction"
        );
        checked += concurrent.len();
    }
    println!(
        "background-race check: 40 queries, {checked} total positions, all \
         byte-identical to the maintenance-free engine \
         (background stats: {:?})",
        racing.maintenance_stats()
    );
}
