//! Shared harness plumbing for the experiment binaries (`e01`…`e18`).
//!
//! Each binary reproduces one table/figure listed in `EXPERIMENTS.md`. They
//! all follow the same recipe: generate a column and a query sequence from
//! `aidx-workloads`, run one or more indexing strategies over it while
//! recording per-query wall-clock time *and* per-query logical effort, and
//! print the derived benchmark metrics. This crate holds the shared pieces so
//! the binaries stay small and uniform.

#![warn(missing_docs)]

use aidx_columnstore::column::Column;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Key;
use aidx_core::strategy::StrategyKind;
use aidx_core::{Database, Query};
use aidx_workloads::metrics::CostSeries;
use aidx_workloads::query::QueryWorkload;
use std::time::Instant;

/// Experiment sizing, overridable through environment variables so that quick
/// smoke runs and full runs use the same binaries:
///
/// * `AIDX_ROWS` — number of rows in the base column (default 2,000,000)
/// * `AIDX_QUERIES` — number of queries per sequence (default 1,000)
/// * `AIDX_SELECTIVITY` — per-query selectivity (default 0.01)
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Number of rows in the generated column.
    pub rows: usize,
    /// Number of queries per sequence.
    pub queries: usize,
    /// Fraction of the key domain each query covers.
    pub selectivity: f64,
    /// Seed for data and workload generation.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            rows: env_usize("AIDX_ROWS", 2_000_000),
            queries: env_usize("AIDX_QUERIES", 1_000),
            selectivity: env_f64("AIDX_SELECTIVITY", 0.01),
            seed: 42,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The measurements of one strategy over one query sequence.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// Strategy label.
    pub label: String,
    /// Wall-clock nanoseconds per query (query 0 includes the strategy's
    /// build/initialization time, which is how the benchmark defines the
    /// first-query cost).
    pub time_ns: CostSeries,
    /// Logical effort (work units) per query, same convention.
    pub effort: CostSeries,
    /// Checksum of result cardinalities (sanity check across strategies).
    pub checksum: u64,
    /// Auxiliary memory at the end of the run, in bytes.
    pub auxiliary_bytes: usize,
    /// Whether the strategy reported convergence at the end of the run.
    pub converged: bool,
}

/// Run `strategy` over `workload` against `keys`, measuring per-query time
/// and effort. The strategy's construction cost is folded into query 0.
pub fn run_strategy(strategy: StrategyKind, keys: &[Key], workload: &QueryWorkload) -> StrategyRun {
    let build_start = Instant::now();
    let mut index = strategy.build(keys);
    let build_ns = build_start.elapsed().as_nanos() as f64;
    let build_effort = index.effort() as f64;

    let mut time_ns = CostSeries::new(strategy.label());
    let mut effort = CostSeries::new(strategy.label());
    let mut previous_effort = index.effort();
    let mut checksum = 0u64;
    for (i, q) in workload.iter().enumerate() {
        let start = Instant::now();
        checksum += index.query_range(q.low, q.high).count() as u64;
        let mut elapsed = start.elapsed().as_nanos() as f64;
        let mut spent = (index.effort() - previous_effort) as f64;
        if i == 0 {
            elapsed += build_ns;
            spent += build_effort;
        }
        time_ns.push(elapsed);
        effort.push(spent);
        previous_effort = index.effort();
    }
    StrategyRun {
        label: strategy.label().to_owned(),
        time_ns,
        effort,
        checksum,
        auxiliary_bytes: index.auxiliary_bytes(),
        converged: index.is_converged(),
    }
}

/// Run `strategy` over `workload` through the `Database`/`Session` facade —
/// the end-to-end path a client sees: catalog snapshot, planner, adaptive
/// index routing, result assembly. The column is registered as table
/// `"data"`, column `"k"`; the first query pays the strategy's build cost
/// inherently, because the facade creates indexes lazily on first touch
/// (no explicit build phase exists at this level).
pub fn run_strategy_facade(
    strategy: StrategyKind,
    keys: &[Key],
    workload: &QueryWorkload,
) -> StrategyRun {
    let db = Database::builder().default_strategy(strategy).build();
    db.create_table(
        "data",
        Table::from_columns(vec![("k", Column::from_i64(keys.to_vec()))])
            .expect("single-column table construction cannot fail"),
    )
    .expect("fresh database has no table named 'data'");
    let session = db.session();

    let mut time_ns = CostSeries::new(strategy.label());
    let mut effort = CostSeries::new(strategy.label());
    let mut previous_effort = 0u64;
    let mut checksum = 0u64;
    for q in workload.iter() {
        let query = Query::table("data").range("k", q.low, q.high);
        let start = Instant::now();
        let result = session
            .execute(&query)
            .expect("range query on int64 column");
        checksum += result.row_count() as u64;
        time_ns.push(start.elapsed().as_nanos() as f64);
        let total = db.total_effort();
        effort.push((total - previous_effort) as f64);
        previous_effort = total;
    }
    let stats = db.index_stats();
    let info = stats.first();
    StrategyRun {
        label: strategy.label().to_owned(),
        time_ns,
        effort,
        checksum,
        auxiliary_bytes: info.map_or(0, |i| i.auxiliary_bytes),
        converged: info.is_some_and(|i| i.converged),
    }
}

/// Run a closure-based index (for structures that do not implement the
/// [`aidx_core::strategy::AdaptiveIndex`] trait, e.g. the sideways-cracking map sets), measuring
/// wall-clock time per query.
pub fn run_custom<F>(label: &str, workload: &QueryWorkload, mut answer: F) -> (CostSeries, u64)
where
    F: FnMut(Key, Key) -> usize,
{
    let mut series = CostSeries::new(label);
    let mut checksum = 0u64;
    for q in workload.iter() {
        let start = Instant::now();
        checksum += answer(q.low, q.high) as u64;
        series.push(start.elapsed().as_nanos() as f64);
    }
    (series, checksum)
}

/// Pretty-print a per-query curve at logarithmically spaced query indices —
/// the textual equivalent of the log-log per-query figures in the papers.
pub fn print_curve(title: &str, runs: &[&CostSeries], unit: &str) {
    println!("\n## {title} (per-query {unit}, sampled at selected queries)");
    let indices = sample_indices(runs.iter().map(|r| r.len()).max().unwrap_or(0));
    print!("{:<12}", "query#");
    for run in runs {
        print!("{:>22}", run.label);
    }
    println!();
    for &i in &indices {
        print!("{:<12}", i + 1);
        for run in runs {
            match run.per_query.get(i) {
                Some(v) => print!("{:>22.0}", v),
                None => print!("{:>22}", "-"),
            }
        }
        println!();
    }
}

/// Logarithmically spaced sample points: 1, 2, 5, 10, 20, 50, ...
pub fn sample_indices(len: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut step = 1usize;
    loop {
        for factor in [1usize, 2, 5] {
            let index = step * factor;
            if index > len {
                return out;
            }
            out.push(index - 1);
        }
        step *= 10;
        if step > len {
            return out;
        }
    }
}

/// Print the cumulative-cost table and pairwise crossovers against the first
/// series (usually the scan baseline).
pub fn print_cumulative(title: &str, runs: &[&CostSeries], unit: &str) {
    println!("\n## {title} (cumulative {unit})");
    println!(
        "{:<22} {:>18} {:>18} {:>26}",
        "technique", "after 10 queries", "after all queries", "overtakes first series at"
    );
    let baseline = runs.first();
    for run in runs {
        let cumulative = run.cumulative();
        let after_10 = cumulative
            .get(9)
            .or(cumulative.last())
            .copied()
            .unwrap_or(0.0);
        let total = cumulative.last().copied().unwrap_or(0.0);
        let crossover = match baseline {
            Some(base) if !std::ptr::eq(*base, *run) => run
                .cumulative_crossover(base)
                .map_or("never".to_owned(), |q| format!("query {}", q + 1)),
            _ => "-".to_owned(),
        };
        println!(
            "{:<22} {:>18.0} {:>18.0} {:>26}",
            run.label, after_10, total, crossover
        );
    }
}

/// Assert that every run produced the same result cardinalities.
pub fn assert_checksums_match(runs: &[StrategyRun]) {
    if let Some(first) = runs.first() {
        for run in runs {
            assert_eq!(
                run.checksum, first.checksum,
                "strategy {} disagrees with {}",
                run.label, first.label
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aidx_workloads::data::{generate_keys, DataDistribution};
    use aidx_workloads::query::WorkloadKind;

    #[test]
    fn sample_indices_are_log_spaced_and_in_bounds() {
        assert_eq!(sample_indices(0), Vec::<usize>::new());
        assert_eq!(sample_indices(3), vec![0, 1]);
        let s = sample_indices(1000);
        assert_eq!(s.first(), Some(&0));
        assert!(s.contains(&99));
        assert!(s.iter().all(|&i| i < 1000));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn run_strategy_produces_consistent_measurements() {
        let keys = generate_keys(5000, DataDistribution::UniformPermutation, 1);
        let workload = QueryWorkload::generate(WorkloadKind::UniformRandom, 50, 0, 5000, 0.01, 2);
        let scan = run_strategy(StrategyKind::FullScan, &keys, &workload);
        let crack = run_strategy(StrategyKind::Cracking, &keys, &workload);
        assert_eq!(scan.checksum, crack.checksum);
        assert_eq!(scan.time_ns.len(), 50);
        assert_eq!(crack.effort.len(), 50);
        assert!(crack.auxiliary_bytes > 0);
        assert_eq!(scan.auxiliary_bytes, 0);
        assert_checksums_match(&[scan, crack]);
    }

    #[test]
    fn facade_run_agrees_with_raw_run() {
        let keys = generate_keys(5000, DataDistribution::UniformPermutation, 1);
        let workload = QueryWorkload::generate(WorkloadKind::UniformRandom, 50, 0, 5000, 0.01, 2);
        let raw = run_strategy(StrategyKind::Cracking, &keys, &workload);
        let facade = run_strategy_facade(StrategyKind::Cracking, &keys, &workload);
        assert_eq!(raw.checksum, facade.checksum);
        assert_eq!(facade.time_ns.len(), 50);
        assert!(facade.auxiliary_bytes > 0);
        assert!(facade.effort.total_cost() > 0.0);
    }

    #[test]
    fn run_custom_measures_closures() {
        let workload = QueryWorkload::generate(WorkloadKind::UniformRandom, 10, 0, 100, 0.1, 3);
        let (series, checksum) = run_custom("const", &workload, |_, _| 7);
        assert_eq!(series.len(), 10);
        assert_eq!(checksum, 70);
    }

    #[test]
    fn default_config_reads_environment() {
        let config = HarnessConfig::default();
        assert!(config.rows > 0);
        assert!(config.queries > 0);
        assert!(config.selectivity > 0.0);
    }
}
