//! Criterion benchmarks for end-to-end query sequences through the unified
//! strategy interface: how long does it take each technique to answer a fixed
//! 200-query random workload over a 1M-row column (including any
//! initialization it chooses to do)? Plus the same sequence through the
//! `Database`/`Session` facade, to keep the facade's overhead per query
//! (catalog snapshot, planner, result assembly) visible and bounded.

use aidx_columnstore::column::Column;
use aidx_columnstore::table::Table;
use aidx_core::strategy::{HybridKind, StrategyKind};
use aidx_core::Database;
use aidx_workloads::data::{generate_keys, DataDistribution};
use aidx_workloads::query::{QueryWorkload, WorkloadKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query_sequence(c: &mut Criterion) {
    let rows = 1 << 20;
    let keys = generate_keys(rows, DataDistribution::UniformPermutation, 7);
    let workload =
        QueryWorkload::generate(WorkloadKind::UniformRandom, 200, 0, rows as i64, 0.01, 9);

    let strategies = [
        StrategyKind::FullScan,
        StrategyKind::FullSort,
        StrategyKind::Cracking,
        StrategyKind::StochasticCracking,
        StrategyKind::AdaptiveMerging { run_size: 1 << 16 },
        StrategyKind::Hybrid {
            algorithm: HybridKind::CrackSort,
        },
    ];

    let mut group = c.benchmark_group("query_sequence_200q_1M_rows");
    group.sample_size(10);
    for strategy in strategies {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut index = strategy.build(&keys);
                    let mut checksum = 0u64;
                    for q in workload.iter() {
                        checksum += index.query_range(q.low, q.high).count() as u64;
                    }
                    black_box(checksum)
                })
            },
        );
    }
    group.finish();
}

fn bench_facade_query_sequence(c: &mut Criterion) {
    let rows = 1 << 20;
    let keys = generate_keys(rows, DataDistribution::UniformPermutation, 7);
    let workload =
        QueryWorkload::generate(WorkloadKind::UniformRandom, 200, 0, rows as i64, 0.01, 9);

    let mut group = c.benchmark_group("facade_query_sequence_200q_1M_rows");
    group.sample_size(10);
    for strategy in [StrategyKind::FullScan, StrategyKind::Cracking] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let db = Database::builder().default_strategy(strategy).build();
                    db.create_table(
                        "data",
                        Table::from_columns(vec![("k", Column::from_i64(keys.clone()))])
                            .expect("columns are equally long"),
                    )
                    .expect("fresh database");
                    let session = db.session();
                    let mut checksum = 0u64;
                    for q in workload.iter() {
                        let result = session
                            .query("data")
                            .range("k", q.low, q.high)
                            .execute()
                            .expect("range query on int64 column");
                        checksum += result.row_count() as u64;
                    }
                    black_box(checksum)
                })
            },
        );
    }
    group.finish();
}

fn bench_converged_lookup(c: &mut Criterion) {
    let rows = 1 << 20;
    let keys = generate_keys(rows, DataDistribution::UniformPermutation, 7);
    let warmup =
        QueryWorkload::generate(WorkloadKind::UniformRandom, 2_000, 0, rows as i64, 0.01, 9);

    let mut group = c.benchmark_group("converged_point_range_lookup");
    group.sample_size(20);
    for strategy in [
        StrategyKind::FullSort,
        StrategyKind::Cracking,
        StrategyKind::AdaptiveMerging { run_size: 1 << 16 },
    ] {
        let mut index = strategy.build(&keys);
        for q in warmup.iter() {
            let _ = index.query_range(q.low, q.high);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, _| {
                let mut i = 0i64;
                b.iter(|| {
                    i = (i + 7919) % (rows as i64 - 1000);
                    black_box(index.query_range(i, i + 1000).count())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = throughput;
    config = Criterion::default();
    targets = bench_query_sequence, bench_facade_query_sequence, bench_converged_lookup
}
criterion_main!(throughput);
