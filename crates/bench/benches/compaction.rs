//! Criterion benchmarks for the maintenance subsystem's chunk compaction.
//!
//! Three measurements around one churn-fragmented table:
//!
//! * `scan/fragmented` vs `scan/compacted` — the zone-pruned range scan a
//!   query pays on a column of many undersized chunks vs the same rows in
//!   full chunks: the win compaction buys.
//! * `compact` — the cost of `Database::compact()` itself on a freshly
//!   churned table: the price paid (off the query path) to buy that win.

use aidx_columnstore::column::Column;
use aidx_columnstore::ops::select::{scan_select_segment, Predicate};
use aidx_columnstore::table::Table;
use aidx_columnstore::types::{Key, Value};
use aidx_core::strategy::StrategyKind;
use aidx_core::Database;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

const ROWS: usize = 50_000;
const CHURN: usize = 2_000;
const CAPACITY: usize = 512;

/// A database whose key column has been fragmented by `CHURN` inserts under
/// live snapshots.
fn churned_db() -> Database {
    let db = Database::builder()
        .default_strategy(StrategyKind::Cracking)
        .segment_capacity(CAPACITY)
        .try_build()
        .expect("valid configuration");
    db.create_table(
        "data",
        Table::from_columns(vec![("k", Column::from_i64((0..ROWS as i64).collect()))])
            .expect("single-column table"),
    )
    .expect("fresh database");
    let session = db.session();
    for i in 0..CHURN {
        let _snapshot = db.table_snapshot("data").expect("table exists");
        session
            .insert_row("data", &[Value::Int64((ROWS + i) as i64)])
            .expect("append");
    }
    db
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);

    let fragmented = churned_db();
    let compacted = churned_db();
    compacted.compact();
    let predicate = Predicate::range((ROWS / 4) as Key, (ROWS / 2) as Key);

    for (label, db) in [
        ("scan/fragmented", &fragmented),
        ("scan/compacted", &compacted),
    ] {
        let snapshot = db.table_snapshot("data").expect("table exists");
        let segment = snapshot
            .column("k")
            .expect("key column")
            .as_i64()
            .expect("int64 column");
        group.bench_function(label, |b| {
            b.iter(|| black_box(scan_select_segment(segment, &predicate)))
        });
    }

    group.bench_function("compact", |b| {
        b.iter_batched(
            churned_db,
            |db| {
                black_box(db.compact());
            },
            BatchSize::PerIteration,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
