//! Criterion benchmark for the parallel engine: chunk-parallel cold scans
//! and partition-parallel adaptive index builds vs. the serial kernel.
//!
//! Matrix: {scan, index-build} × parallelism {1, 2, 4}. The scan case runs
//! the `ParallelScan` operator over a multi-chunk, zone-mapped segment of
//! shuffled keys (no pruning possible — every chunk is read); the build case
//! measures the facade's lazy first-touch index construction, which at
//! parallelism > 1 is a domain scatter plus per-partition builds fanned out
//! across the pool. Speedups flatten at the machine's core count.

use aidx_columnstore::column::Column;
use aidx_columnstore::ops::select::Predicate;
use aidx_columnstore::segment::Segment;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Key;
use aidx_core::strategy::StrategyKind;
use aidx_core::{ColumnId, Database};
use aidx_parallel::{parallel_scan_select, ThreadPool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const ROWS: usize = 1_000_000;

fn shuffled_keys() -> Vec<Key> {
    // multiplicative shuffle: a full permutation of 0..ROWS, so zone maps
    // cannot prune and selections are spread over every chunk
    (0..ROWS as Key)
        .map(|i| (i * 999_983) % ROWS as Key)
        .collect()
}

fn bench_parallel_scan(c: &mut Criterion) {
    let segment = Segment::from_vec(shuffled_keys());
    let predicate = Predicate::range(0, (ROWS / 100) as Key);
    let mut group = c.benchmark_group("parallel_scan");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let pool = ThreadPool::new(workers);
        group.bench_with_input(BenchmarkId::new("cold_scan", workers), &pool, |b, pool| {
            b.iter(|| black_box(parallel_scan_select(pool, &segment, &predicate)))
        });
    }
    group.finish();
}

fn bench_parallel_index_build(c: &mut Criterion) {
    let keys = shuffled_keys();
    let mut group = c.benchmark_group("parallel_index_build");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("cracking_first_touch", workers),
            &workers,
            |b, &workers| {
                let db = Database::builder()
                    .default_strategy(StrategyKind::Cracking)
                    .parallelism(workers)
                    .try_build()
                    .expect("valid configuration");
                db.create_table(
                    "data",
                    Table::from_columns(vec![("k", Column::from_i64(keys.clone()))])
                        .expect("single-column table"),
                )
                .expect("fresh database");
                let session = db.session();
                let column = ColumnId::new("data", "k");
                b.iter(|| {
                    // drop + query = a true cold scatter/build every iteration
                    db.index_manager().drop_index(&column);
                    black_box(
                        session
                            .query("data")
                            .range("k", 1000, 50_000)
                            .execute()
                            .expect("range query")
                            .row_count(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scan, bench_parallel_index_build);
criterion_main!(benches);
