//! Criterion micro-benchmarks for the cracker-index implementations (the
//! BTreeMap-backed catalog vs. the hand-rolled AVL tree) — the data-structure
//! ablation called out in DESIGN.md — plus cracker-column initialization.

use aidx_cracking::cracker_column::CrackerColumn;
use aidx_cracking::index::{AvlCutIndex, BTreeCutIndex, CutIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cut_index_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_index_insert_10k");
    let keys: Vec<i64> = (0..10_000).map(|i| (i * 48271) % 1_000_000).collect();
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut index = BTreeCutIndex::new();
            for (i, &k) in keys.iter().enumerate() {
                index.insert(k, i);
            }
            black_box(index.len())
        })
    });
    group.bench_function("avl", |b| {
        b.iter(|| {
            let mut index = AvlCutIndex::new();
            for (i, &k) in keys.iter().enumerate() {
                index.insert(k, i);
            }
            black_box(index.len())
        })
    });
    group.finish();
}

fn bench_cut_index_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_index_floor_lookup");
    for &cuts in &[100usize, 10_000] {
        let keys: Vec<i64> = (0..cuts as i64).map(|i| i * 97).collect();
        let mut btree = BTreeCutIndex::new();
        let mut avl = AvlCutIndex::new();
        for (i, &k) in keys.iter().enumerate() {
            btree.insert(k, i);
            avl.insert(k, i);
        }
        let probes: Vec<i64> = (0..1000).map(|i| (i * 7919) % (cuts as i64 * 97)).collect();
        group.bench_with_input(BenchmarkId::new("btree", cuts), &cuts, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    if btree.floor(p).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("avl", cuts), &cuts, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    if avl.floor(p).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_cracker_column_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cracker_column_initial_copy");
    for &n in &[1usize << 17, 1 << 20] {
        let keys: Vec<i64> = (0..n as i64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(CrackerColumn::from_keys(&keys).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = structures;
    config = Criterion::default().sample_size(15);
    targets = bench_cut_index_insert, bench_cut_index_lookup, bench_cracker_column_copy
}
criterion_main!(structures);
