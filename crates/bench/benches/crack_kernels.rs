//! Criterion micro-benchmarks for the physical reorganization kernels:
//! crack-in-two, crack-in-three, sorted-run extraction and the scan / binary
//! search baselines they compete with.

use aidx_cracking::crack::{crack_in_three, crack_in_two, PivotSide};
use aidx_merging::run::SortedRun;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZES: [usize; 3] = [1 << 14, 1 << 17, 1 << 20];

fn make_pairs(n: usize) -> (Vec<i64>, Vec<u32>) {
    let values: Vec<i64> = (0..n as i64).map(|i| (i * 48271) % n as i64).collect();
    let rowids: Vec<u32> = (0..n as u32).collect();
    (values, rowids)
}

fn bench_crack_in_two(c: &mut Criterion) {
    let mut group = c.benchmark_group("crack_in_two");
    for &n in &SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (values, rowids) = make_pairs(n);
            b.iter_batched(
                || (values.clone(), rowids.clone()),
                |(mut values, mut rowids)| {
                    let split = crack_in_two(
                        &mut values,
                        &mut rowids,
                        0,
                        n,
                        (n / 2) as i64,
                        PivotSide::Left,
                    );
                    black_box(split)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_crack_in_three(c: &mut Criterion) {
    let mut group = c.benchmark_group("crack_in_three");
    for &n in &SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (values, rowids) = make_pairs(n);
            let low = (n / 4) as i64;
            let high = (3 * n / 4) as i64;
            b.iter_batched(
                || (values.clone(), rowids.clone()),
                |(mut values, mut rowids)| {
                    let split = crack_in_three(&mut values, &mut rowids, 0, n, low, high);
                    black_box(split.high_split - split.low_split)
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_scan_vs_sorted_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_baselines");
    let n = 1 << 20;
    let (values, _) = make_pairs(n);
    let low = (n / 4) as i64;
    let high = low + (n / 100) as i64;

    group.bench_function("full_scan_count", |b| {
        b.iter(|| black_box(values.iter().filter(|&&v| v >= low && v < high).count()))
    });

    let run = SortedRun::from_pairs(
        values
            .iter()
            .copied()
            .enumerate()
            .map(|(i, k)| (k, i as u32))
            .collect(),
    );
    group.bench_function("sorted_run_count", |b| {
        b.iter(|| black_box(run.count_range(low, high)))
    });
    group.bench_function("sorted_run_extract_and_restore", |b| {
        b.iter_batched(
            || run.clone(),
            |mut run| black_box(run.extract_range(low, high).len()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(15);
    targets = bench_crack_in_two, bench_crack_in_three, bench_scan_vs_sorted_extract
}
criterion_main!(kernels);
