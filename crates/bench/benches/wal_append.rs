//! Criterion benchmark for the write-ahead log's append overhead.
//!
//! Matrix: unlogged (no durability) vs the three fsync policies —
//! `OnSeal`, `EveryN(64)`, `Always` — measured as 64-row batch inserts
//! through the normal `Session::insert_rows` path. The interesting spread
//! is between the no-WAL baseline and `OnSeal`/`EveryN` (encode + buffered
//! write, no fsync on the hot path) versus `Always` (one fsync per batch),
//! which shows why group commit and deferred sync exist.

use aidx_columnstore::column::Column;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Value;
use aidx_core::strategy::StrategyKind;
use aidx_core::{Database, DurabilityConfig, FsyncPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

const BATCH: usize = 64;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// Unique scratch directory under the system temp dir; removed by `drop_dir`.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "aidx-bench-wal-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn drop_dir(path: &PathBuf) {
    let _ = std::fs::remove_dir_all(path);
}

fn empty_table() -> Table {
    Table::from_columns(vec![
        ("k", Column::from_i64(vec![])),
        ("v", Column::from_i64(vec![])),
    ])
    .expect("two-column table")
}

fn build_db(durability: Option<DurabilityConfig>) -> Database {
    let mut builder = Database::builder().default_strategy(StrategyKind::Cracking);
    if let Some(config) = durability {
        builder = builder.durability(config);
    }
    let db = builder.try_build().expect("valid configuration");
    db.create_table("data", empty_table()).expect("fresh table");
    db
}

fn batch(next: &mut i64) -> Vec<Vec<Value>> {
    (0..BATCH as i64)
        .map(|i| {
            let k = (*next + i) * 7919 % 1_000_003;
            vec![Value::Int64(k), Value::Int64(*next + i)]
        })
        .collect()
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);

    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("unlogged", None),
        ("on_seal", Some(FsyncPolicy::OnSeal)),
        ("every_64", Some(FsyncPolicy::EveryN(64))),
        ("always", Some(FsyncPolicy::Always)),
    ];

    for (label, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("insert_batch", label),
            &policy,
            |b, &policy| {
                let dir = scratch_dir(label);
                let db = build_db(policy.map(|fsync| {
                    DurabilityConfig::at(&dir)
                        .fsync(fsync)
                        // keep checkpoints out of the measurement window
                        .checkpoint_after_rows(u64::MAX)
                }));
                let session = db.session();
                let mut next = 0i64;
                b.iter(|| {
                    let rows = batch(&mut next);
                    next += BATCH as i64;
                    black_box(session.insert_rows("data", &rows).expect("insert"));
                });
                drop(session);
                drop(db);
                drop_dir(&dir);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append);
criterion_main!(benches);
