//! Criterion benchmark for the segment-storage headline property: the cost
//! of a single-row insert while snapshots are alive.
//!
//! Matrix: {segmented, flat} layout × {0, 1, 8} live snapshots. The
//! segmented layout copy-on-writes only the mutable tail chunk, so its
//! append cost must be independent of both table size and snapshot count;
//! the flat layout (emulated with one table-sized chunk) deep-clones the
//! whole table on every insert under a snapshot — the pre-segment behavior
//! this subsystem replaces.

use aidx_columnstore::column::Column;
use aidx_columnstore::segment::DEFAULT_SEGMENT_CAPACITY;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Value;
use aidx_core::strategy::StrategyKind;
use aidx_core::Database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 100_000;

fn build_db(segment_capacity: usize) -> Database {
    let db = Database::builder()
        .default_strategy(StrategyKind::Cracking)
        .segment_capacity(segment_capacity)
        .try_build()
        .expect("valid configuration");
    db.create_table(
        "data",
        Table::from_columns(vec![("k", Column::from_i64((0..ROWS as i64).collect()))])
            .expect("single-column table"),
    )
    .expect("fresh database");
    db
}

fn bench_insert_under_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_under_snapshot");
    group.sample_size(10);
    for (layout, capacity) in [
        ("segmented", DEFAULT_SEGMENT_CAPACITY),
        // one chunk spanning the whole row-id domain: the tail can never
        // seal no matter how many iterations the harness runs, so every
        // copy-on-write append under a snapshot stays a full-table copy,
        // like the flat layout it emulates
        ("flat", u32::MAX as usize),
    ] {
        for snapshots in [0usize, 1, 8] {
            group.bench_with_input(
                BenchmarkId::new(layout, snapshots),
                &snapshots,
                |b, &snapshots| {
                    let db = build_db(capacity);
                    let session = db.session();
                    // live readers: a ring of snapshots, one slot refreshed
                    // to the *current* table version before every insert, so
                    // each insert really copy-on-writes under a live snapshot
                    let mut held: Vec<Arc<Table>> = (0..snapshots)
                        .map(|_| db.table_snapshot("data").expect("table exists"))
                        .collect();
                    let mut next = ROWS as i64;
                    b.iter(|| {
                        next += 1;
                        if !held.is_empty() {
                            let slot = next as usize % held.len();
                            held[slot] = db.table_snapshot("data").expect("table exists");
                        }
                        black_box(
                            session
                                .insert_row("data", &[Value::Int64(next)])
                                .expect("append"),
                        )
                    });
                    drop(held);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_insert_under_snapshot);
criterion_main!(benches);
