//! Criterion benchmark for the segment-storage headline property: the cost
//! of a single-row insert while snapshots are alive.
//!
//! Matrix: {segmented, flat} layout × {0, 1, 8} live snapshots. The
//! segmented catalog path shares every sealed chunk across copy-on-write,
//! clones only the tail, and *seals* the clone — the tail is paid for once
//! at its current size and never re-copied as it grows — so its append
//! cost must be independent of both table size and snapshot count; the flat
//! layout (the pre-segment behavior, emulated on a bare `Arc<Table>` whose
//! single giant tail can never seal) deep-clones the whole table on every
//! insert under a snapshot. The fragmentation early seals leave behind is
//! the `compaction` benchmark's subject.

use aidx_columnstore::column::Column;
use aidx_columnstore::segment::DEFAULT_SEGMENT_CAPACITY;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Value;
use aidx_core::strategy::StrategyKind;
use aidx_core::Database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 100_000;

fn build_db(segment_capacity: usize) -> Database {
    let db = Database::builder()
        .default_strategy(StrategyKind::Cracking)
        .segment_capacity(segment_capacity)
        .try_build()
        .expect("valid configuration");
    db.create_table(
        "data",
        Table::from_columns(vec![("k", Column::from_i64((0..ROWS as i64).collect()))])
            .expect("single-column table"),
    )
    .expect("fresh database");
    db
}

fn bench_insert_under_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_under_snapshot");
    group.sample_size(10);
    // segmented: the real catalog path
    for snapshots in [0usize, 1, 8] {
        group.bench_with_input(
            BenchmarkId::new("segmented", snapshots),
            &snapshots,
            |b, &snapshots| {
                let db = build_db(DEFAULT_SEGMENT_CAPACITY);
                let session = db.session();
                // live readers: a ring of snapshots, one slot refreshed to
                // the *current* table version before every insert, so each
                // insert really copy-on-writes under a live snapshot
                let mut held: Vec<Arc<Table>> = (0..snapshots)
                    .map(|_| db.table_snapshot("data").expect("table exists"))
                    .collect();
                let mut next = ROWS as i64;
                b.iter(|| {
                    next += 1;
                    if !held.is_empty() {
                        let slot = next as usize % held.len();
                        held[slot] = db.table_snapshot("data").expect("table exists");
                    }
                    black_box(
                        session
                            .insert_row("data", &[Value::Int64(next)])
                            .expect("append"),
                    )
                });
                drop(held);
            },
        );
    }
    // flat: the pre-segment behavior, emulated on a bare Arc<Table> whose
    // one giant tail can never seal — every copy-on-write append under a
    // snapshot is a full-table copy (the catalog path no longer has this
    // degeneration: it seals shared tails instead of copying them)
    for snapshots in [0usize, 1, 8] {
        group.bench_with_input(
            BenchmarkId::new("flat", snapshots),
            &snapshots,
            |b, &snapshots| {
                let mut table = Arc::new(
                    Table::from_columns(vec![(
                        "k",
                        Column::from_i64((0..ROWS as i64).collect())
                            .with_segment_capacity(u32::MAX as usize),
                    )])
                    .expect("single-column table"),
                );
                let mut held: Vec<Arc<Table>> =
                    (0..snapshots).map(|_| Arc::clone(&table)).collect();
                let mut next = ROWS as i64;
                b.iter(|| {
                    next += 1;
                    if !held.is_empty() {
                        let slot = next as usize % held.len();
                        held[slot] = Arc::clone(&table);
                    }
                    black_box(
                        Arc::make_mut(&mut table)
                            .append_row(&[Value::Int64(next)])
                            .expect("append"),
                    )
                });
                drop(held);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert_under_snapshot);
criterion_main!(benches);
