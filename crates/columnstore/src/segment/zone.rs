//! Per-chunk zone-map statistics.
//!
//! A [`ZoneMap`] summarizes one chunk of a segmented column: row count,
//! minimum, maximum and a null-free flag. Scans consult the zone map before
//! touching a chunk's values, so chunks that cannot contain a qualifying
//! value are skipped entirely — the classic small-materialized-aggregates
//! optimization, here applied to the append-only segment store.

/// Summary statistics for one chunk of a segmented column.
///
/// `min`/`max` are `None` for an empty chunk. The dense arrays of this
/// substrate are non-nullable (NULL exists only at the [`crate::types::Value`]
/// boundary), so [`ZoneMap::null_free`] is always `true` today; the flag is
/// carried explicitly so that a future nullable encoding can flow through the
/// same pruning logic without an API change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMap<T> {
    row_count: usize,
    min: Option<T>,
    max: Option<T>,
    null_free: bool,
}

impl<T: Copy + PartialOrd> Default for ZoneMap<T> {
    fn default() -> Self {
        ZoneMap::empty()
    }
}

impl<T: Copy + PartialOrd> ZoneMap<T> {
    /// A zone map over zero rows.
    pub fn empty() -> Self {
        ZoneMap {
            row_count: 0,
            min: None,
            max: None,
            null_free: true,
        }
    }

    /// Compute the zone map of a dense value slice.
    pub fn from_values(values: &[T]) -> Self {
        let mut zone = ZoneMap::empty();
        for &v in values {
            zone.accumulate(v);
        }
        zone
    }

    /// Fold one appended value into the statistics.
    #[inline]
    pub fn accumulate(&mut self, value: T) {
        self.row_count += 1;
        self.min = Some(match self.min {
            Some(m) if m < value => m,
            _ => value,
        });
        self.max = Some(match self.max {
            Some(m) if m > value => m,
            _ => value,
        });
    }

    /// Number of rows summarized.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Minimum value in the chunk (`None` when empty).
    pub fn min(&self) -> Option<T> {
        self.min
    }

    /// Maximum value in the chunk (`None` when empty).
    pub fn max(&self) -> Option<T> {
        self.max
    }

    /// Whether the chunk is known to contain no NULLs (always `true` for the
    /// current non-nullable dense arrays).
    pub fn null_free(&self) -> bool {
        self.null_free
    }

    /// Whether the chunk *may* contain a value in the half-open range
    /// `[low, high)`. `false` is a proof of absence; `true` only means the
    /// chunk must be scanned.
    #[inline]
    pub fn may_contain_range(&self, low: T, high: T) -> bool {
        match (self.min, self.max) {
            (Some(min), Some(max)) => max >= low && min < high,
            _ => false,
        }
    }

    /// Whether the chunk *may* contain `value` (min/max containment).
    #[inline]
    pub fn may_contain(&self, value: T) -> bool {
        match (self.min, self.max) {
            (Some(min), Some(max)) => min <= value && value <= max,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_zone_matches_nothing() {
        let z: ZoneMap<i64> = ZoneMap::empty();
        assert_eq!(z.row_count(), 0);
        assert_eq!(z.min(), None);
        assert_eq!(z.max(), None);
        assert!(z.null_free());
        assert!(!z.may_contain_range(i64::MIN, i64::MAX));
        assert!(!z.may_contain(0));
    }

    #[test]
    fn from_values_tracks_min_max_count() {
        let z = ZoneMap::from_values(&[5i64, -2, 9, 0]);
        assert_eq!(z.row_count(), 4);
        assert_eq!(z.min(), Some(-2));
        assert_eq!(z.max(), Some(9));
    }

    #[test]
    fn half_open_range_overlap() {
        let z = ZoneMap::from_values(&[10i64, 20]);
        assert!(z.may_contain_range(0, 11), "overlaps at 10");
        assert!(z.may_contain_range(20, 21), "overlaps at 20");
        assert!(!z.may_contain_range(0, 10), "high bound is exclusive");
        assert!(!z.may_contain_range(21, 100), "entirely above");
        assert!(z.may_contain_range(12, 15), "inside the gap still maybe");
    }

    #[test]
    fn point_containment() {
        let z = ZoneMap::from_values(&[10i64, 20]);
        assert!(z.may_contain(10) && z.may_contain(20) && z.may_contain(15));
        assert!(!z.may_contain(9) && !z.may_contain(21));
    }

    #[test]
    fn accumulate_matches_bulk_construction() {
        let values = [3i64, 1, 4, 1, 5, 9, 2, 6];
        let mut incremental = ZoneMap::empty();
        for &v in &values {
            incremental.accumulate(v);
        }
        assert_eq!(incremental, ZoneMap::from_values(&values));
    }

    #[test]
    fn float_zones_work_through_partial_ord() {
        let z = ZoneMap::from_values(&[1.5f64, -0.5, 2.5]);
        assert_eq!(z.min(), Some(-0.5));
        assert_eq!(z.max(), Some(2.5));
        assert!(z.may_contain_range(2.0, 3.0));
    }
}
