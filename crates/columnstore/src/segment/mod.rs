//! Chunked append-only segment storage.
//!
//! A [`Segment<T>`] stores a column as a sequence of immutable *sealed
//! chunks* plus one mutable *tail chunk*:
//!
//! * Sealed chunks hold exactly [`Segment::chunk_capacity`] rows, live behind
//!   [`std::sync::Arc`], and carry a [`ZoneMap`] (min/max/count, null-free
//!   flag) computed at seal time. They are never mutated again.
//! * The tail accumulates appends. When it reaches the chunk capacity it is
//!   sealed and a fresh tail begins. The tail's zone map is maintained
//!   incrementally so chunk-at-a-time scans can prune it like any other
//!   chunk.
//!
//! Cloning a segment — which is what the catalog's copy-on-write does when a
//! writer appends while a snapshot is alive — bumps the reference count of
//! every sealed chunk and deep-copies only the tail, so the cost of an append
//! under a live snapshot is `O(chunk)` instead of `O(table)`. Sealed chunks
//! are therefore pointer-shared across snapshots ([`Segment::sealed_chunks`]
//! exposes them so tests can assert `Arc::ptr_eq`).
//!
//! Row identity is unchanged from the flat representation: a [`RowId`] is the
//! stable global position of the row. Chunks sealed by an overflowing tail
//! are always exactly full, so `(chunk, offset)` is derived as
//! `(rowid / capacity, rowid % capacity)` on that fast path; a tail can also
//! be sealed *early* ([`Segment::seal_tail`] — the copy-on-write append path
//! seals the tails of its private clone, so repeated appends under snapshots
//! copy only the rows appended since the last seal instead of a tail that
//! keeps growing toward a full chunk), which produces **undersized**
//! sealed chunks. A segment with undersized chunks keeps a per-chunk base
//! table and resolves positions by binary search instead of division. Heavy
//! insert churn under snapshots therefore fragments a column into many small
//! sealed chunks; [`Segment::compact_runs`] merges runs of them back into
//! full chunks **without changing any row's global position**, which is what
//! lets the maintenance subsystem reconcile adaptive indexes across a
//! compaction instead of rebuilding them. Adaptive indexes built on top of a
//! segment keep emitting global positions, so nothing above the storage layer
//! has to re-learn row identity.

mod chunk;
mod zone;

pub use chunk::{ChunkView, SealedChunk};
pub use zone::ZoneMap;

use crate::types::RowId;
use std::borrow::Cow;
use std::sync::Arc;

/// Default number of rows per chunk.
///
/// 4096 eight-byte keys is 32 KiB per chunk: large enough that per-chunk
/// bookkeeping vanishes in scan cost, small enough that the copy-on-write
/// tail clone stays far below a whole-table copy.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 4096;

/// A chunked, append-only column: `Arc`-shared sealed chunks plus one
/// mutable tail chunk.
#[derive(Debug, Clone)]
pub struct Segment<T> {
    capacity: usize,
    sealed: Vec<Arc<SealedChunk<T>>>,
    /// Global base position of each sealed chunk (`bases[i]` = number of
    /// rows in sealed chunks before chunk `i`). Consulted only when the
    /// segment is not `uniform`.
    bases: Vec<RowId>,
    /// Total rows across all sealed chunks.
    sealed_rows: usize,
    /// True while every sealed chunk holds exactly `capacity` rows, so
    /// position lookups can use division instead of binary search.
    uniform: bool,
    tail: Vec<T>,
    tail_zone: ZoneMap<T>,
}

impl<T: Copy + PartialOrd + std::fmt::Debug> Default for Segment<T> {
    fn default() -> Self {
        Segment::new()
    }
}

impl<T: Copy + PartialOrd + std::fmt::Debug> Segment<T> {
    /// An empty segment with the default chunk capacity.
    pub fn new() -> Self {
        Segment::with_chunk_capacity(DEFAULT_SEGMENT_CAPACITY)
    }

    /// An empty segment sealing chunks of `capacity` rows.
    ///
    /// # Panics
    /// Panics when `capacity` is zero (the facade validates user-supplied
    /// capacities before they reach this layer).
    pub fn with_chunk_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "segment chunk capacity must be at least 1");
        Segment {
            capacity,
            sealed: Vec::new(),
            bases: Vec::new(),
            sealed_rows: 0,
            uniform: true,
            tail: Vec::new(),
            tail_zone: ZoneMap::empty(),
        }
    }

    /// Build a segment from a vector with the default chunk capacity.
    pub fn from_vec(values: Vec<T>) -> Self {
        Segment::from_vec_with_capacity(values, DEFAULT_SEGMENT_CAPACITY)
    }

    /// Build a segment from a vector, sealing chunks of `capacity` rows.
    pub fn from_vec_with_capacity(values: Vec<T>, capacity: usize) -> Self {
        let mut segment = Segment::with_chunk_capacity(capacity);
        segment.extend_from_slice(&values);
        segment
    }

    /// Rows per sealed chunk.
    pub fn chunk_capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of rows (sealed + tail).
    pub fn len(&self) -> usize {
        self.sealed_rows + self.tail.len()
    }

    /// True when the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Number of sealed (immutable, `Arc`-shared) chunks.
    pub fn sealed_chunk_count(&self) -> usize {
        self.sealed.len()
    }

    /// The sealed chunks, for sharing checks (`Arc::ptr_eq`) and
    /// chunk-granular consumers.
    pub fn sealed_chunks(&self) -> &[Arc<SealedChunk<T>>] {
        &self.sealed
    }

    /// The mutable tail's rows appended since the last seal.
    pub fn tail(&self) -> &[T] {
        &self.tail
    }

    /// Append one value, returning its stable global position.
    pub fn push(&mut self, value: T) -> RowId {
        let id = self.len() as RowId;
        self.tail.push(value);
        self.tail_zone.accumulate(value);
        if self.tail.len() == self.capacity {
            self.seal_tail();
        }
        id
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Seal the current tail as an immutable chunk, even when it holds fewer
    /// than `capacity` rows. Returns `true` when a chunk was sealed (`false`
    /// for an empty tail — empty chunks never exist).
    ///
    /// Within one segment this is a move, not a copy. The copy-on-write
    /// append path seals the tails of its private clone before appending:
    /// the clone pays for the tail once, at its current size, and from then
    /// on the sealed chunk is `Arc`-shared with every later snapshot — so
    /// churn copies only the rows appended since the last seal, never a
    /// growing tail. The price is an *undersized* sealed chunk; heavy churn
    /// under snapshots accumulates many of them, which the maintenance
    /// subsystem's chunk compaction ([`Segment::compact_runs`]) merges back
    /// into full chunks.
    pub fn seal_tail(&mut self) -> bool {
        if self.tail.is_empty() {
            return false;
        }
        let values = std::mem::take(&mut self.tail);
        let zone = std::mem::take(&mut self.tail_zone);
        self.push_sealed(Arc::new(SealedChunk::seal_with_zone(values, zone)));
        true
    }

    /// Append an already sealed chunk, maintaining the base table and the
    /// uniformity fast-path flag.
    fn push_sealed(&mut self, chunk: Arc<SealedChunk<T>>) {
        debug_assert!(!chunk.is_empty(), "empty chunks never exist");
        debug_assert!(chunk.len() <= self.capacity);
        self.bases.push(self.sealed_rows as RowId);
        self.sealed_rows += chunk.len();
        self.uniform &= chunk.len() == self.capacity;
        self.sealed.push(chunk);
    }

    /// Index of the sealed chunk containing global position `p`; the caller
    /// guarantees `p < self.sealed_rows`.
    #[inline]
    fn sealed_chunk_index(&self, p: usize) -> usize {
        if self.uniform {
            p / self.capacity
        } else {
            // the first base greater than p belongs to the *next* chunk
            self.bases.partition_point(|&b| b as usize <= p) - 1
        }
    }

    /// Value at `position`, if in bounds.
    pub fn get(&self, position: usize) -> Option<T> {
        if position < self.sealed_rows {
            let chunk = self.sealed_chunk_index(position);
            self.sealed[chunk]
                .values()
                .get(position - self.bases[chunk] as usize)
                .copied()
        } else {
            self.tail.get(position - self.sealed_rows).copied()
        }
    }

    /// Value at `position`; panics when out of bounds (hot-path accessor).
    #[inline]
    pub fn value(&self, position: usize) -> T {
        if position < self.sealed_rows {
            let chunk = self.sealed_chunk_index(position);
            self.sealed[chunk].values()[position - self.bases[chunk] as usize]
        } else {
            self.tail[position - self.sealed_rows]
        }
    }

    /// Iterate over every chunk in position order: the sealed chunks first,
    /// then (when non-empty) the tail. Each view carries the chunk's global
    /// base position and zone map, so operators can prune and scan
    /// chunk-at-a-time.
    pub fn chunks(&self) -> impl Iterator<Item = ChunkView<'_, T>> + '_ {
        let tail_view = if self.tail.is_empty() {
            None
        } else {
            Some(ChunkView {
                base: self.sealed_rows as RowId,
                values: self.tail.as_slice(),
                zone: self.tail_zone,
                sealed: false,
            })
        };
        self.sealed
            .iter()
            .zip(self.bases.iter())
            .map(|(chunk, &base)| ChunkView {
                base,
                values: chunk.values(),
                zone: *chunk.zone(),
                sealed: true,
            })
            .chain(tail_view)
    }

    /// Iterate over all values in position order.
    ///
    /// The iterator reports an exact length ([`ExactSizeIterator`]), so index
    /// builders can stream a multi-chunk segment straight into their own
    /// storage — pre-sized, without first materializing a transient
    /// contiguous copy via [`Segment::to_contiguous`].
    pub fn iter(&self) -> SegmentIter<'_, T> {
        SegmentIter {
            segment: self,
            chunk: 0,
            offset: 0,
            remaining: self.len(),
        }
    }

    /// Materialize the segment into one contiguous vector.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for chunk in self.chunks() {
            out.extend_from_slice(chunk.values);
        }
        out
    }

    /// A contiguous view of the values: borrowed when the segment happens to
    /// live in a single chunk (small tables, fresh tails), owned otherwise.
    /// Index builders use this so single-chunk segments pay no copy.
    pub fn to_contiguous(&self) -> Cow<'_, [T]> {
        if self.sealed.is_empty() {
            Cow::Borrowed(self.tail.as_slice())
        } else if self.sealed.len() == 1 && self.tail.is_empty() {
            Cow::Borrowed(self.sealed[0].values())
        } else {
            Cow::Owned(self.to_vec())
        }
    }

    /// Gather the values at ascending `positions` (chunk-at-a-time: the
    /// current chunk is resolved once per run of positions, not per row).
    pub fn gather_positions(&self, positions: &[RowId]) -> Vec<T> {
        let mut out = Vec::with_capacity(positions.len());
        let mut current: Option<ChunkView<'_, T>> = None;
        for &p in positions {
            let needs_chunk = match &current {
                Some(c) => p < c.base || p >= c.end(),
                None => true,
            };
            if needs_chunk {
                current = Some(self.chunk_containing(p));
            }
            let c = current.as_ref().expect("chunk resolved above");
            out.push(c.values[(p - c.base) as usize]);
        }
        out
    }

    /// The chunk view containing global position `p` (panics out of bounds).
    fn chunk_containing(&self, p: RowId) -> ChunkView<'_, T> {
        if (p as usize) < self.sealed_rows {
            let chunk = self.sealed_chunk_index(p as usize);
            ChunkView {
                base: self.bases[chunk],
                values: self.sealed[chunk].values(),
                zone: *self.sealed[chunk].zone(),
                sealed: true,
            }
        } else {
            ChunkView {
                base: self.sealed_rows as RowId,
                values: self.tail.as_slice(),
                zone: self.tail_zone,
                sealed: false,
            }
        }
    }

    /// Minimum value across all chunks, from zone maps alone.
    pub fn min(&self) -> Option<T> {
        self.chunks()
            .filter_map(|c| c.zone.min())
            .fold(None, |acc, v| match acc {
                Some(m) if m < v => Some(m),
                _ => Some(v),
            })
    }

    /// Maximum value across all chunks, from zone maps alone.
    pub fn max(&self) -> Option<T> {
        self.chunks()
            .filter_map(|c| c.zone.max())
            .fold(None, |acc, v| match acc {
                Some(m) if m > v => Some(m),
                _ => Some(v),
            })
    }

    /// The same rows re-chunked to `capacity` rows per chunk. Returns a
    /// clone (sharing every sealed chunk, and keeping any undersized chunks
    /// as they are — that is compaction's job, not re-chunking's) when the
    /// capacity already matches.
    pub fn rechunked(&self, capacity: usize) -> Segment<T> {
        if capacity == self.capacity {
            return self.clone();
        }
        Segment::from_vec_with_capacity(self.to_vec(), capacity)
    }

    /// Row counts of the sealed chunks, in chunk order — the observation a
    /// compaction policy plans over.
    pub fn sealed_chunk_lens(&self) -> Vec<usize> {
        self.sealed.iter().map(|c| c.len()).collect()
    }

    /// Number of sealed chunks holding fewer than `capacity` rows
    /// (undersized chunks produced by early tail seals under snapshots).
    pub fn fragmented_chunk_count(&self) -> usize {
        if self.uniform {
            return 0;
        }
        self.sealed
            .iter()
            .filter(|c| c.len() < self.capacity)
            .count()
    }

    /// Merge the given runs of sealed chunks, adaptive-merging style: each
    /// half-open run `[start, end)` of consecutive sealed chunks is rewritten
    /// into full `capacity`-row chunks (plus at most one final partial
    /// chunk), while every sealed chunk *outside* the runs — and the mutable
    /// tail — is shared by `Arc`, not copied.
    ///
    /// Compaction is a pure physical re-layout: the returned segment holds
    /// the same values at the same global positions (`compact_runs` changes
    /// `chunks()`, never `iter()`), which is what allows adaptive indexes
    /// built on the old layout to be *reconciled* onto the compacted segment
    /// instead of rebuilt.
    ///
    /// # Panics
    /// Panics when the runs are not sorted, not disjoint, or out of bounds —
    /// plans come from a compaction-policy planner (`aidx-maintenance`) that
    /// guarantees these invariants, so violating them is a logic error, not
    /// an input error.
    pub fn compact_runs(&self, runs: &[(usize, usize)]) -> Segment<T> {
        let mut previous_end = 0;
        for &(start, end) in runs {
            assert!(
                start >= previous_end && start < end && end <= self.sealed.len(),
                "compaction runs must be sorted, disjoint and in bounds \
                 (run [{start}, {end}) over {} sealed chunks)",
                self.sealed.len()
            );
            previous_end = end;
        }
        let mut out = Segment::with_chunk_capacity(self.capacity);
        let mut next_run = 0;
        let mut i = 0;
        while i < self.sealed.len() {
            if next_run < runs.len() && runs[next_run].0 == i {
                let (start, end) = runs[next_run];
                next_run += 1;
                let total: usize = self.sealed[start..end].iter().map(|c| c.len()).sum();
                let mut merged: Vec<T> = Vec::with_capacity(total);
                for chunk in &self.sealed[start..end] {
                    merged.extend_from_slice(chunk.values());
                }
                for piece in merged.chunks(self.capacity) {
                    out.push_sealed(Arc::new(SealedChunk::seal(piece.to_vec())));
                }
                i = end;
            } else {
                out.push_sealed(Arc::clone(&self.sealed[i]));
                i += 1;
            }
        }
        out.tail = self.tail.clone();
        out.tail_zone = self.tail_zone;
        debug_assert_eq!(out.len(), self.len(), "compaction preserves rows");
        out
    }
}

/// Position-ordered value iterator over a [`Segment`] with an exact length,
/// created by [`Segment::iter`].
#[derive(Debug, Clone)]
pub struct SegmentIter<'a, T> {
    segment: &'a Segment<T>,
    /// Current chunk: an index into the sealed chunks, or `sealed.len()` for
    /// the tail.
    chunk: usize,
    /// Offset of the next value within the current chunk.
    offset: usize,
    remaining: usize,
}

impl<T: Copy + PartialOrd + std::fmt::Debug> Iterator for SegmentIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.remaining == 0 {
            return None;
        }
        let values: &[T] = if self.chunk < self.segment.sealed.len() {
            self.segment.sealed[self.chunk].values()
        } else {
            &self.segment.tail
        };
        let v = values[self.offset];
        self.offset += 1;
        if self.offset == values.len() {
            self.chunk += 1;
            self.offset = 0;
        }
        self.remaining -= 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: Copy + PartialOrd + std::fmt::Debug> ExactSizeIterator for SegmentIter<'_, T> {}

/// Segments compare by logical contents (length and values in position
/// order), independent of chunk layout, so re-chunking never changes
/// equality.
impl<T: Copy + PartialOrd + std::fmt::Debug> PartialEq for Segment<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Copy + PartialOrd + std::fmt::Debug> From<Vec<T>> for Segment<T> {
    fn from(values: Vec<T>) -> Self {
        Segment::from_vec(values)
    }
}

impl<T: Copy + PartialOrd + std::fmt::Debug> FromIterator<T> for Segment<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Segment::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(n: usize, capacity: usize) -> Segment<i64> {
        Segment::from_vec_with_capacity((0..n as i64).collect(), capacity)
    }

    #[test]
    fn push_seals_full_chunks() {
        let mut s: Segment<i64> = Segment::with_chunk_capacity(4);
        for i in 0..10 {
            assert_eq!(s.push(i), i as RowId);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.sealed_chunk_count(), 2);
        assert_eq!(s.tail(), &[8, 9]);
        assert_eq!(s.chunk_capacity(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn every_sealed_chunk_is_exactly_full() {
        let s = segment(103, 8);
        for chunk in s.sealed_chunks() {
            assert_eq!(chunk.len(), 8);
        }
        assert_eq!(s.tail().len(), 103 % 8);
    }

    #[test]
    fn random_access_crosses_chunks() {
        let s = segment(100, 7);
        for i in 0..100 {
            assert_eq!(s.value(i), i as i64);
            assert_eq!(s.get(i), Some(i as i64));
        }
        assert_eq!(s.get(100), None);
    }

    #[test]
    fn chunks_cover_all_rows_with_correct_bases_and_zones() {
        let s = segment(20, 6);
        let views: Vec<_> = s.chunks().collect();
        assert_eq!(views.len(), 4, "3 sealed + tail");
        let mut expected_base = 0;
        for view in &views {
            assert_eq!(view.base, expected_base);
            assert_eq!(view.zone.row_count(), view.values.len());
            assert_eq!(view.zone.min(), view.values.iter().copied().min());
            assert_eq!(view.zone.max(), view.values.iter().copied().max());
            expected_base = view.end();
        }
        assert_eq!(expected_base, 20);
        assert!(views[0].sealed && !views[3].sealed);
    }

    #[test]
    fn iter_and_to_vec_are_position_ordered() {
        let s = segment(23, 5);
        let expected: Vec<i64> = (0..23).collect();
        assert_eq!(s.to_vec(), expected);
        assert_eq!(s.iter().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn iter_reports_exact_length_at_every_step() {
        let s = segment(23, 5);
        let mut iter = s.iter();
        for consumed in 0..23 {
            assert_eq!(iter.len(), 23 - consumed);
            assert_eq!(iter.size_hint(), (23 - consumed, Some(23 - consumed)));
            assert!(iter.next().is_some());
        }
        assert_eq!(iter.len(), 0);
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next(), None, "fused after exhaustion");
        let empty: Segment<i64> = Segment::new();
        assert_eq!(empty.iter().len(), 0);
        assert_eq!(empty.iter().next(), None);
        // collect through the exact-size hint pre-sizes correctly
        let collected: Vec<i64> = segment(17, 4).iter().collect();
        assert_eq!(collected, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn to_contiguous_borrows_single_chunk_segments() {
        let tail_only = segment(3, 8);
        assert!(matches!(tail_only.to_contiguous(), Cow::Borrowed(_)));
        let one_sealed = segment(8, 8);
        assert!(matches!(one_sealed.to_contiguous(), Cow::Borrowed(_)));
        let multi = segment(20, 8);
        assert!(matches!(multi.to_contiguous(), Cow::Owned(_)));
        assert_eq!(multi.to_contiguous().as_ref(), multi.to_vec().as_slice());
    }

    #[test]
    fn clone_shares_sealed_chunks_and_copies_the_tail() {
        let mut s = segment(20, 6);
        let snapshot = s.clone();
        // sealed chunks are pointer-shared
        for (a, b) in s.sealed_chunks().iter().zip(snapshot.sealed_chunks()) {
            assert!(Arc::ptr_eq(a, b));
        }
        // appending to the original never shows up in the clone
        s.push(999);
        assert_eq!(s.len(), 21);
        assert_eq!(snapshot.len(), 20);
        assert_eq!(snapshot.max(), Some(19));
    }

    #[test]
    fn gather_positions_matches_random_access() {
        let s = segment(50, 7);
        let positions: Vec<RowId> = vec![0, 6, 7, 13, 14, 48, 49];
        let gathered = s.gather_positions(&positions);
        let expected: Vec<i64> = positions.iter().map(|&p| s.value(p as usize)).collect();
        assert_eq!(gathered, expected);
        assert!(s.gather_positions(&[]).is_empty());
    }

    #[test]
    fn min_max_from_zones() {
        let s = Segment::from_vec_with_capacity(vec![5i64, -3, 12, 7, 0], 2);
        assert_eq!(s.min(), Some(-3));
        assert_eq!(s.max(), Some(12));
        let empty: Segment<i64> = Segment::new();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
    }

    #[test]
    fn rechunk_preserves_contents_and_equality() {
        let s = segment(37, 5);
        let r = s.rechunked(11);
        assert_eq!(r.chunk_capacity(), 11);
        assert_eq!(r.to_vec(), s.to_vec());
        assert_eq!(r, s, "equality is layout-independent");
        // same-capacity rechunk shares chunks instead of copying
        let same = s.rechunked(5);
        for (a, b) in s.sealed_chunks().iter().zip(same.sealed_chunks()) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn conversions() {
        let s: Segment<i64> = vec![1, 2, 3].into();
        assert_eq!(s.len(), 3);
        let c: Segment<i64> = (0..5).collect();
        assert_eq!(c.to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(Segment::<i64>::default().len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Segment::<i64>::with_chunk_capacity(0);
    }

    #[test]
    fn early_seal_produces_undersized_chunks_with_exact_lookup() {
        let mut s: Segment<i64> = Segment::with_chunk_capacity(8);
        for i in 0..5 {
            s.push(i);
        }
        assert!(s.seal_tail(), "non-empty tail seals");
        assert!(!s.seal_tail(), "empty tail does not");
        for i in 5..14 {
            s.push(i);
        }
        // layout: sealed [0..5), sealed [5..13), tail [13..14)
        assert_eq!(s.sealed_chunk_count(), 2);
        assert_eq!(s.sealed_chunk_lens(), vec![5, 8]);
        assert_eq!(s.fragmented_chunk_count(), 1);
        assert_eq!(s.len(), 14);
        for i in 0..14 {
            assert_eq!(s.value(i), i as i64, "position {i}");
            assert_eq!(s.get(i), Some(i as i64));
        }
        assert_eq!(s.get(14), None);
        // chunk views carry the true bases
        let bases: Vec<RowId> = s.chunks().map(|c| c.base).collect();
        assert_eq!(bases, vec![0, 5, 13]);
        // gather crosses undersized chunk boundaries correctly
        let gathered = s.gather_positions(&[0, 4, 5, 12, 13]);
        assert_eq!(gathered, vec![0, 4, 5, 12, 13]);
        assert_eq!(s.iter().collect::<Vec<_>>(), (0..14).collect::<Vec<_>>());
    }

    #[test]
    fn full_chunks_are_never_counted_fragmented() {
        let s = segment(32, 8);
        assert_eq!(s.fragmented_chunk_count(), 0);
        assert_eq!(s.sealed_chunk_lens(), vec![8, 8, 8, 8]);
    }

    #[test]
    fn compact_runs_merges_fragments_and_shares_the_rest() {
        let mut s: Segment<i64> = Segment::with_chunk_capacity(4);
        for i in 0..4 {
            s.push(i); // one full chunk, kept out of the plan
        }
        for i in 4..10 {
            s.push(i);
            s.seal_tail(); // six single-row fragments
        }
        s.push(10); // tail
        assert_eq!(s.sealed_chunk_lens(), vec![4, 1, 1, 1, 1, 1, 1]);
        let compacted = s.compact_runs(&[(1, 7)]);
        // six 1-row fragments merge into one full chunk + one 2-row remainder
        assert_eq!(compacted.sealed_chunk_lens(), vec![4, 4, 2]);
        assert_eq!(compacted.fragmented_chunk_count(), 1);
        // logical contents and positions are untouched
        assert_eq!(compacted.len(), s.len());
        assert_eq!(compacted, s, "equality is layout-independent");
        for i in 0..11 {
            assert_eq!(compacted.value(i), i as i64);
        }
        // the untouched full chunk is pointer-shared, not copied
        assert!(Arc::ptr_eq(
            &s.sealed_chunks()[0],
            &compacted.sealed_chunks()[0]
        ));
        // the tail is preserved
        assert_eq!(compacted.tail(), &[10]);
        // zone maps of merged chunks are exact
        for chunk in compacted.chunks() {
            assert_eq!(chunk.zone.min(), chunk.values.iter().copied().min());
            assert_eq!(chunk.zone.max(), chunk.values.iter().copied().max());
            assert_eq!(chunk.zone.row_count(), chunk.values.len());
        }
        // an empty plan is an Arc-sharing clone
        let untouched = s.compact_runs(&[]);
        assert_eq!(untouched.sealed_chunk_lens(), s.sealed_chunk_lens());
        for (a, b) in s.sealed_chunks().iter().zip(untouched.sealed_chunks()) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    #[should_panic(expected = "sorted, disjoint and in bounds")]
    fn compact_runs_rejects_overlapping_runs() {
        let mut s: Segment<i64> = Segment::with_chunk_capacity(4);
        for i in 0..4 {
            s.push(i);
            s.seal_tail();
        }
        let _ = s.compact_runs(&[(0, 2), (1, 3)]);
    }

    #[test]
    fn nan_values_seal_without_panicking() {
        // regression: sealing a float chunk containing NaN used to trip the
        // debug zone-map recheck because Some(NaN) != Some(NaN)
        let mut s: Segment<f64> = Segment::with_chunk_capacity(4);
        for v in [1.0, 2.0, 3.0, f64::NAN, 5.0] {
            s.push(v);
        }
        assert_eq!(s.sealed_chunk_count(), 1);
        assert_eq!(s.len(), 5);
        assert!(s.value(3).is_nan());
        assert_eq!(s.value(4), 5.0);
    }
}
