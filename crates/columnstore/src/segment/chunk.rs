//! Sealed chunks: the immutable, shareable unit of segment storage.

use super::zone::ZoneMap;
use crate::types::RowId;

/// An immutable, full chunk of a segmented column.
///
/// Once sealed, a chunk is never mutated again; segments share sealed chunks
/// across snapshots behind `Arc`, so a copy-on-write append clones only the
/// mutable tail, never the sealed prefix. The zone map is computed exactly
/// once, at seal time.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedChunk<T> {
    values: Vec<T>,
    zone: ZoneMap<T>,
}

impl<T: Copy + PartialOrd> SealedChunk<T> {
    /// Seal a full chunk, computing its zone map.
    pub fn seal(values: Vec<T>) -> Self {
        let zone = ZoneMap::from_values(&values);
        SealedChunk { values, zone }
    }

    /// Seal a chunk whose zone map was maintained incrementally while the
    /// chunk was still the mutable tail.
    ///
    /// Debug builds verify the maintained row count against the values. The
    /// min/max are deliberately *not* re-checked with `==` here: for float
    /// chunks containing NaN, `Some(NaN) != Some(NaN)` under `PartialEq`,
    /// and a NaN-poisoned float zone map is documented, harmless behavior
    /// (pruning only ever consults integer key zones).
    pub(crate) fn seal_with_zone(values: Vec<T>, zone: ZoneMap<T>) -> Self
    where
        T: PartialEq + std::fmt::Debug,
    {
        debug_assert_eq!(zone.row_count(), values.len());
        SealedChunk { values, zone }
    }

    /// The chunk's dense values.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the chunk holds no rows (never the case for chunks sealed
    /// by a segment, which seals only full chunks).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The chunk's zone-map statistics.
    #[inline]
    pub fn zone(&self) -> &ZoneMap<T> {
        &self.zone
    }
}

/// A borrowed view of one chunk of a segment — sealed or tail — used by
/// chunk-at-a-time operators.
#[derive(Debug, Clone, Copy)]
pub struct ChunkView<'a, T> {
    /// Global position of the chunk's first row.
    pub base: RowId,
    /// The chunk's dense values.
    pub values: &'a [T],
    /// Zone-map statistics for exactly these values (for the tail, the
    /// incrementally maintained statistics of the rows appended so far).
    pub zone: ZoneMap<T>,
    /// Whether this view is of an immutable sealed chunk (`false` for the
    /// mutable tail).
    pub sealed: bool,
}

impl<T> ChunkView<'_, T> {
    /// Global position one past the chunk's last row.
    #[inline]
    pub fn end(&self) -> RowId {
        self.base + self.values.len() as RowId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_computes_zone() {
        let chunk = SealedChunk::seal(vec![4i64, 1, 7]);
        assert_eq!(chunk.len(), 3);
        assert!(!chunk.is_empty());
        assert_eq!(chunk.values(), &[4, 1, 7]);
        assert_eq!(chunk.zone().min(), Some(1));
        assert_eq!(chunk.zone().max(), Some(7));
        assert_eq!(chunk.zone().row_count(), 3);
    }

    #[test]
    fn chunk_view_end() {
        let values = [1i64, 2, 3];
        let view = ChunkView {
            base: 10,
            values: &values,
            zone: ZoneMap::from_values(&values),
            sealed: true,
        };
        assert_eq!(view.end(), 13);
    }
}
