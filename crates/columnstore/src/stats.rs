//! Lightweight column statistics.
//!
//! Used by the offline/online index advisors in `aidx-baselines` (the
//! "what-if" analysis needs cardinalities and value ranges) and by the
//! auto-tuning kernel in `aidx-core` to estimate scan vs. index costs.

use crate::column::Column;
use crate::types::Key;

/// Summary statistics for an integer (key) column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of rows.
    pub row_count: usize,
    /// Minimum value (None for an empty column).
    pub min: Option<Key>,
    /// Maximum value (None for an empty column).
    pub max: Option<Key>,
    /// Number of distinct values (exact; the synthetic columns are small
    /// enough that an exact count is affordable).
    pub distinct_count: usize,
    /// Equi-width histogram over `[min, max]`.
    pub histogram: Histogram,
}

impl ColumnStats {
    /// Compute statistics for a dense key slice.
    pub fn from_keys(keys: &[Key], histogram_buckets: usize) -> Self {
        if keys.is_empty() {
            return ColumnStats {
                row_count: 0,
                min: None,
                max: None,
                distinct_count: 0,
                histogram: Histogram::empty(),
            };
        }
        let min = keys.iter().copied().min().expect("non-empty");
        let max = keys.iter().copied().max().expect("non-empty");
        let mut sorted: Vec<Key> = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let distinct_count = sorted.len();
        let histogram = Histogram::build(keys, min, max, histogram_buckets);
        ColumnStats {
            row_count: keys.len(),
            min: Some(min),
            max: Some(max),
            distinct_count,
            histogram,
        }
    }

    /// Compute statistics for an `Int64` column. Returns `None` for other
    /// column types (the advisors only reason about key columns).
    pub fn from_column(column: &Column, histogram_buckets: usize) -> Option<Self> {
        column
            .as_i64()
            .map(|c| Self::from_keys(&c.to_contiguous(), histogram_buckets))
    }

    /// Estimated selectivity of the half-open range `[low, high)` using the
    /// histogram, clamped to `[0, 1]`.
    pub fn estimate_range_selectivity(&self, low: Key, high: Key) -> f64 {
        if self.row_count == 0 || high <= low {
            return 0.0;
        }
        let est = self.histogram.estimate_range_count(low, high);
        (est / self.row_count as f64).clamp(0.0, 1.0)
    }
}

/// An equi-width histogram over a key range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: Key,
    max: Key,
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram with no data.
    pub fn empty() -> Self {
        Histogram {
            min: 0,
            max: 0,
            counts: Vec::new(),
        }
    }

    /// Build an equi-width histogram with `buckets` buckets.
    pub fn build(keys: &[Key], min: Key, max: Key, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let mut counts = vec![0u64; buckets];
        let width = Self::bucket_width(min, max, buckets);
        for &k in keys {
            let idx = Self::bucket_index(k, min, width, buckets);
            counts[idx] += 1;
        }
        Histogram { min, max, counts }
    }

    fn bucket_width(min: Key, max: Key, buckets: usize) -> f64 {
        let span = (max - min) as f64 + 1.0;
        span / buckets as f64
    }

    fn bucket_index(key: Key, min: Key, width: f64, buckets: usize) -> usize {
        let offset = (key - min) as f64;
        ((offset / width) as usize).min(buckets - 1)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total number of values summarized.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimate how many values fall in `[low, high)` assuming a uniform
    /// distribution within each bucket.
    pub fn estimate_range_count(&self, low: Key, high: Key) -> f64 {
        if self.counts.is_empty() || high <= low || high <= self.min || low > self.max {
            return 0.0;
        }
        let buckets = self.counts.len();
        let width = Self::bucket_width(self.min, self.max, buckets);
        let mut estimate = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let bucket_low = self.min as f64 + i as f64 * width;
            let bucket_high = bucket_low + width;
            let overlap_low = bucket_low.max(low as f64);
            let overlap_high = bucket_high.min(high as f64);
            if overlap_high > overlap_low {
                let fraction = (overlap_high - overlap_low) / width;
                estimate += count as f64 * fraction;
            }
        }
        estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_empty_column() {
        let s = ColumnStats::from_keys(&[], 8);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.distinct_count, 0);
        assert_eq!(s.estimate_range_selectivity(0, 10), 0.0);
    }

    #[test]
    fn stats_basic_fields() {
        let keys: Vec<Key> = (0..100).collect();
        let s = ColumnStats::from_keys(&keys, 10);
        assert_eq!(s.row_count, 100);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(99));
        assert_eq!(s.distinct_count, 100);
        assert_eq!(s.histogram.total(), 100);
        assert_eq!(s.histogram.buckets(), 10);
    }

    #[test]
    fn stats_distinct_counts_duplicates() {
        let keys = vec![1, 1, 1, 2, 2, 3];
        let s = ColumnStats::from_keys(&keys, 4);
        assert_eq!(s.distinct_count, 3);
    }

    #[test]
    fn uniform_selectivity_estimate_close() {
        let keys: Vec<Key> = (0..10_000).collect();
        let s = ColumnStats::from_keys(&keys, 100);
        let est = s.estimate_range_selectivity(1000, 2000);
        assert!((est - 0.1).abs() < 0.02, "estimate {est} not close to 0.1");
        assert_eq!(s.estimate_range_selectivity(20_000, 30_000), 0.0);
        assert_eq!(s.estimate_range_selectivity(500, 500), 0.0);
    }

    #[test]
    fn histogram_range_edges() {
        let keys: Vec<Key> = (0..100).collect();
        let h = Histogram::build(&keys, 0, 99, 10);
        assert_eq!(h.estimate_range_count(-50, -10), 0.0);
        assert_eq!(h.estimate_range_count(200, 300), 0.0);
        let all = h.estimate_range_count(0, 100);
        assert!((all - 100.0).abs() < 1.0);
    }

    #[test]
    fn from_column_only_for_int64() {
        let c = Column::from_i64(vec![5, 10, 15]);
        let s = ColumnStats::from_column(&c, 4).unwrap();
        assert_eq!(s.row_count, 3);
        let f = Column::from_f64(vec![1.0]);
        assert!(ColumnStats::from_column(&f, 4).is_none());
    }

    #[test]
    fn histogram_single_bucket_and_empty() {
        let h = Histogram::build(&[1, 2, 3], 1, 3, 1);
        assert_eq!(h.buckets(), 1);
        assert_eq!(h.total(), 3);
        let e = Histogram::empty();
        assert_eq!(e.buckets(), 0);
        assert_eq!(e.estimate_range_count(0, 10), 0.0);
    }
}
