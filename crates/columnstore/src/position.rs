//! Position lists (a.k.a. selection vectors / candidate lists).
//!
//! A selection over a column produces the *positions* of qualifying rows, not
//! the rows themselves; later operators combine position lists and only fetch
//! the attribute values they need (late tuple reconstruction). This is the
//! intermediate-result representation the cracking papers assume from
//! MonetDB's BAT algebra.

use crate::types::RowId;

/// A list of row positions, kept sorted and duplicate-free so that set
/// operations (intersection, union, difference) are linear merges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PositionList {
    positions: Vec<RowId>,
}

impl PositionList {
    /// Create an empty position list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty list with capacity for `capacity` positions.
    pub fn with_capacity(capacity: usize) -> Self {
        PositionList {
            positions: Vec::with_capacity(capacity),
        }
    }

    /// Build from an arbitrary vector; sorts and deduplicates.
    pub fn from_vec(mut positions: Vec<RowId>) -> Self {
        positions.sort_unstable();
        positions.dedup();
        PositionList { positions }
    }

    /// Build from a vector that is already sorted and duplicate-free.
    ///
    /// Debug builds assert the invariant; release builds trust the caller
    /// (this is the hot path used by scans, which emit positions in order).
    pub fn from_sorted_vec(positions: Vec<RowId>) -> Self {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        PositionList { positions }
    }

    /// A contiguous range of positions `[start, end)`.
    pub fn from_range(start: RowId, end: RowId) -> Self {
        PositionList {
            positions: (start..end).collect(),
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no row qualifies.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Append a position that is strictly greater than every current one.
    #[inline]
    pub fn push(&mut self, position: RowId) {
        debug_assert!(self.positions.last().is_none_or(|&last| last < position));
        self.positions.push(position);
    }

    /// The positions as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[RowId] {
        &self.positions
    }

    /// Iterate over positions.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.positions.iter().copied()
    }

    /// Whether `position` is contained (binary search).
    pub fn contains(&self, position: RowId) -> bool {
        self.positions.binary_search(&position).is_ok()
    }

    /// Consume and return the raw vector.
    pub fn into_vec(self) -> Vec<RowId> {
        self.positions
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &PositionList) -> PositionList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.positions[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PositionList { positions: out }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &PositionList) -> PositionList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len() + other.len());
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.positions[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.positions[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.positions[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.positions[i..]);
        out.extend_from_slice(&other.positions[j..]);
        PositionList { positions: out }
    }

    /// Set difference: positions in `self` but not in `other`.
    pub fn difference(&self, other: &PositionList) -> PositionList {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.len());
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.positions[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.positions[i..]);
        PositionList { positions: out }
    }

    /// Selectivity of this list relative to a column of `total` rows.
    pub fn selectivity(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.len() as f64 / total as f64
        }
    }
}

impl FromIterator<RowId> for PositionList {
    fn from_iter<I: IntoIterator<Item = RowId>>(iter: I) -> Self {
        PositionList::from_vec(iter.into_iter().collect())
    }
}

impl From<Vec<RowId>> for PositionList {
    fn from(v: Vec<RowId>) -> Self {
        PositionList::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_sorts_and_dedups() {
        let p = PositionList::from_vec(vec![5, 1, 3, 1, 5]);
        assert_eq!(p.as_slice(), &[1, 3, 5]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn range_and_contains() {
        let p = PositionList::from_range(2, 6);
        assert_eq!(p.as_slice(), &[2, 3, 4, 5]);
        assert!(p.contains(4));
        assert!(!p.contains(6));
    }

    #[test]
    fn push_preserves_order() {
        let mut p = PositionList::new();
        p.push(1);
        p.push(4);
        p.push(9);
        assert_eq!(p.as_slice(), &[1, 4, 9]);
    }

    #[test]
    fn intersect_union_difference() {
        let a = PositionList::from_vec(vec![1, 2, 3, 5, 8]);
        let b = PositionList::from_vec(vec![2, 3, 4, 8, 9]);
        assert_eq!(a.intersect(&b).as_slice(), &[2, 3, 8]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3, 4, 5, 8, 9]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 5]);
        assert_eq!(b.difference(&a).as_slice(), &[4, 9]);
    }

    #[test]
    fn set_ops_with_empty() {
        let a = PositionList::from_vec(vec![1, 2]);
        let e = PositionList::new();
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.union(&e), a);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
    }

    #[test]
    fn selectivity() {
        let p = PositionList::from_range(0, 25);
        assert!((p.selectivity(100) - 0.25).abs() < 1e-12);
        assert_eq!(PositionList::new().selectivity(0), 0.0);
    }

    #[test]
    fn iterators_and_conversions() {
        let p: PositionList = vec![3u32, 1, 2].into();
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(p.clone().into_vec(), vec![1, 2, 3]);
        let q: PositionList = (0u32..3).collect();
        assert_eq!(q.as_slice(), &[0, 1, 2]);
        let r = PositionList::from_sorted_vec(vec![1, 2, 3]);
        assert_eq!(r.len(), 3);
        let s = PositionList::with_capacity(8);
        assert!(s.is_empty());
    }
}
