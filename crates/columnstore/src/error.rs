//! Error type for the column-store substrate.

use crate::types::DataType;
use std::fmt;

/// Result alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, ColumnStoreError>;

/// Errors produced by the column-store substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnStoreError {
    /// A column or table name was not found in the schema / catalog.
    NotFound {
        /// What kind of object was looked up ("column", "table", ...).
        kind: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// A value of the wrong type was supplied for a column.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Type the column expects.
        expected: DataType,
        /// Type that was supplied (None means NULL).
        found: Option<DataType>,
    },
    /// A row append supplied the wrong number of values.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// An object with this name already exists.
    AlreadyExists {
        /// What kind of object ("table", "column").
        kind: &'static str,
        /// Its name.
        name: String,
    },
    /// A position was out of bounds for a column.
    PositionOutOfBounds {
        /// Offending position.
        position: u64,
        /// Column length.
        len: usize,
    },
    /// Columns of a table must all have the same length.
    LengthMismatch {
        /// Expected length (length of the first column).
        expected: usize,
        /// Observed length.
        found: usize,
    },
}

impl fmt::Display for ColumnStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnStoreError::NotFound { kind, name } => {
                write!(f, "{kind} not found: {name}")
            }
            ColumnStoreError::TypeMismatch {
                column,
                expected,
                found,
            } => match found {
                Some(found) => write!(
                    f,
                    "type mismatch for column {column}: expected {expected}, found {found}"
                ),
                None => write!(
                    f,
                    "type mismatch for column {column}: expected {expected}, found NULL"
                ),
            },
            ColumnStoreError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, found {found}"
                )
            }
            ColumnStoreError::AlreadyExists { kind, name } => {
                write!(f, "{kind} already exists: {name}")
            }
            ColumnStoreError::PositionOutOfBounds { position, len } => {
                write!(
                    f,
                    "position {position} out of bounds for column of length {len}"
                )
            }
            ColumnStoreError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "column length mismatch: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for ColumnStoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_found() {
        let e = ColumnStoreError::NotFound {
            kind: "column",
            name: "a".into(),
        };
        assert_eq!(e.to_string(), "column not found: a");
    }

    #[test]
    fn display_type_mismatch() {
        let e = ColumnStoreError::TypeMismatch {
            column: "a".into(),
            expected: DataType::Int64,
            found: Some(DataType::Utf8),
        };
        assert!(e.to_string().contains("expected int64"));
        let e = ColumnStoreError::TypeMismatch {
            column: "a".into(),
            expected: DataType::Int64,
            found: None,
        };
        assert!(e.to_string().contains("found NULL"));
    }

    #[test]
    fn display_other_variants() {
        assert!(ColumnStoreError::ArityMismatch {
            expected: 2,
            found: 3
        }
        .to_string()
        .contains("arity"));
        assert!(ColumnStoreError::AlreadyExists {
            kind: "table",
            name: "t".into()
        }
        .to_string()
        .contains("already exists"));
        assert!(ColumnStoreError::PositionOutOfBounds {
            position: 9,
            len: 3
        }
        .to_string()
        .contains("out of bounds"));
        assert!(ColumnStoreError::LengthMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("length mismatch"));
    }
}
