//! A simple hash join on key columns.
//!
//! The adaptive indexing tutorial discusses joins as one of the operators a
//! fully adaptive kernel must eventually cover; here the join is a standard
//! bulk hash join producing *pairs of positions*, so that downstream
//! reconstruction stays late-materialized.

use crate::column::Column;
use crate::types::{Key, RowId};
use std::collections::HashMap;

/// The position pairs produced by a join: `(left_position, right_position)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinResult {
    pairs: Vec<(RowId, RowId)>,
}

impl JoinResult {
    /// The matched position pairs, in build-then-probe order.
    pub fn pairs(&self) -> &[(RowId, RowId)] {
        &self.pairs
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no rows matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Positions of the left input, in match order (may contain duplicates).
    pub fn left_positions(&self) -> Vec<RowId> {
        self.pairs.iter().map(|&(l, _)| l).collect()
    }

    /// Positions of the right input, in match order (may contain duplicates).
    pub fn right_positions(&self) -> Vec<RowId> {
        self.pairs.iter().map(|&(_, r)| r).collect()
    }
}

/// Hash join two dense key slices on equality.
///
/// The smaller side should be passed as `build` for best performance; the
/// function does not swap sides itself so that callers keep control over
/// which side's positions end up on the left of each pair.
pub fn hash_join_keys(build: &[Key], probe: &[Key]) -> JoinResult {
    let mut table: HashMap<Key, Vec<RowId>> = HashMap::with_capacity(build.len());
    for (i, &k) in build.iter().enumerate() {
        table.entry(k).or_default().push(i as RowId);
    }
    let mut pairs = Vec::new();
    for (j, &k) in probe.iter().enumerate() {
        if let Some(builds) = table.get(&k) {
            for &i in builds {
                pairs.push((i, j as RowId));
            }
        }
    }
    JoinResult { pairs }
}

/// Hash join two key columns on equality. Non-integer columns produce an
/// empty result.
pub fn hash_join(left: &Column, right: &Column) -> JoinResult {
    match (left.as_i64(), right.as_i64()) {
        (Some(l), Some(r)) => hash_join_keys(&l.to_contiguous(), &r.to_contiguous()),
        _ => JoinResult::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_basic() {
        let left = vec![1, 2, 3, 2];
        let right = vec![2, 4, 1];
        let r = hash_join_keys(&left, &right);
        // probe order: 2 matches positions 1 and 3; 4 matches none; 1 matches 0
        assert_eq!(r.pairs(), &[(1, 0), (3, 0), (0, 2)]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.left_positions(), vec![1, 3, 0]);
        assert_eq!(r.right_positions(), vec![0, 0, 2]);
    }

    #[test]
    fn join_no_matches() {
        let r = hash_join_keys(&[1, 2], &[3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn join_columns_dispatch() {
        let l = Column::from_i64(vec![1, 2]);
        let r = Column::from_i64(vec![2, 2]);
        assert_eq!(hash_join(&l, &r).len(), 2);
        let f = Column::from_f64(vec![1.0]);
        assert!(hash_join(&l, &f).is_empty());
    }

    #[test]
    fn join_empty_inputs() {
        assert!(hash_join_keys(&[], &[1, 2]).is_empty());
        assert!(hash_join_keys(&[1, 2], &[]).is_empty());
    }
}
