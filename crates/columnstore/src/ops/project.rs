//! Late-materializing projection (fetch) operators.
//!
//! Given a position list produced by a selection, these operators fetch the
//! attribute values of *other* columns of the same table — the "tuple
//! reconstruction" step that sideways cracking optimizes.

use crate::column::Column;
use crate::error::Result;
use crate::position::PositionList;
use crate::types::{Key, Value};

/// Fetch `i64` values at `positions` from a key column (chunk-at-a-time:
/// the backing chunk is resolved once per run of positions, not per row).
///
/// Non-integer columns yield an empty vector (the caller is expected to have
/// validated the column type; the kernel layer does).
pub fn fetch_i64(column: &Column, positions: &PositionList) -> Vec<Key> {
    match column.as_i64() {
        Some(c) => c.gather_positions(positions.as_slice()),
        None => Vec::new(),
    }
}

/// Fetch `f64` values at `positions`.
pub fn fetch_f64(column: &Column, positions: &PositionList) -> Vec<f64> {
    match column.as_f64() {
        Some(c) => c.gather_positions(positions.as_slice()),
        None => Vec::new(),
    }
}

/// Fetch dynamically typed values at `positions` (works for every column
/// type; slower than the typed variants).
pub fn fetch_values(column: &Column, positions: &PositionList) -> Result<Vec<Value>> {
    column.gather(positions)
}

/// Fetch `i64` values from a dense slice at `positions` — the innermost
/// reconstruction kernel shared by the adaptive operators.
#[inline]
pub fn fetch_keys_from_slice(keys: &[Key], positions: &PositionList) -> Vec<Key> {
    positions.iter().map(|p| keys[p as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_i64_gathers_in_position_order() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        let p = PositionList::from_vec(vec![3, 1]);
        assert_eq!(fetch_i64(&c, &p), vec![20, 40]);
    }

    #[test]
    fn fetch_i64_on_wrong_type_is_empty() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        let p = PositionList::from_vec(vec![0]);
        assert!(fetch_i64(&c, &p).is_empty());
        let c2 = Column::from_i64(vec![1]);
        assert!(fetch_f64(&c2, &p).is_empty());
    }

    #[test]
    fn fetch_f64_and_values() {
        let c = Column::from_f64(vec![0.5, 1.5, 2.5]);
        let p = PositionList::from_vec(vec![0, 2]);
        assert_eq!(fetch_f64(&c, &p), vec![0.5, 2.5]);
        let vals = fetch_values(&c, &p).unwrap();
        assert_eq!(vals, vec![Value::Float64(0.5), Value::Float64(2.5)]);
    }

    #[test]
    fn fetch_from_slice() {
        let keys = vec![9, 8, 7, 6];
        let p = PositionList::from_vec(vec![0, 3]);
        assert_eq!(fetch_keys_from_slice(&keys, &p), vec![9, 6]);
    }

    #[test]
    fn fetch_empty_positions() {
        let c = Column::from_i64(vec![1, 2, 3]);
        let p = PositionList::new();
        assert!(fetch_i64(&c, &p).is_empty());
        assert!(fetch_values(&c, &p).unwrap().is_empty());
    }
}
