//! Aggregation operators over whole columns or position lists.

use crate::column::Column;
use crate::position::PositionList;
use crate::types::Key;

/// The result of a numeric aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of aggregated rows.
    pub count: usize,
    /// Sum of the aggregated values.
    pub sum: i128,
    /// Minimum value (None when `count == 0`).
    pub min: Option<Key>,
    /// Maximum value (None when `count == 0`).
    pub max: Option<Key>,
}

impl Aggregate {
    /// An aggregate over zero rows.
    pub fn empty() -> Self {
        Aggregate {
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Mean of the aggregated values, if any.
    pub fn avg(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Fold one value into the aggregate.
    #[inline]
    pub fn accumulate(&mut self, v: Key) {
        self.count += 1;
        self.sum += v as i128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }
}

/// Aggregate every value in a dense key slice.
pub fn aggregate_keys(keys: &[Key]) -> Aggregate {
    let mut agg = Aggregate::empty();
    for &v in keys {
        agg.accumulate(v);
    }
    agg
}

/// Aggregate the values of a key column at the given positions
/// (chunk-at-a-time gather over the backing segment).
pub fn aggregate_at(column: &Column, positions: &PositionList) -> Aggregate {
    let mut agg = Aggregate::empty();
    if let Some(c) = column.as_i64() {
        for v in c.gather_positions(positions.as_slice()) {
            agg.accumulate(v);
        }
    }
    agg
}

/// Sum of key values at the given positions (common fast path in the
/// experiment harnesses: queries are `SELECT SUM(b) WHERE a BETWEEN ...`).
pub fn sum_at(column: &Column, positions: &PositionList) -> i128 {
    match column.as_i64() {
        Some(c) => c
            .gather_positions(positions.as_slice())
            .into_iter()
            .map(|v| v as i128)
            .sum(),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_empty() {
        let a = aggregate_keys(&[]);
        assert_eq!(a.count, 0);
        assert_eq!(a.sum, 0);
        assert_eq!(a.min, None);
        assert_eq!(a.max, None);
        assert_eq!(a.avg(), None);
    }

    #[test]
    fn aggregate_values() {
        let a = aggregate_keys(&[5, -3, 10, 2]);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 14);
        assert_eq!(a.min, Some(-3));
        assert_eq!(a.max, Some(10));
        assert!((a.avg().unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_at_positions() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        let p = PositionList::from_vec(vec![1, 3]);
        let a = aggregate_at(&c, &p);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 60);
        assert_eq!(a.min, Some(20));
        assert_eq!(a.max, Some(40));
        assert_eq!(sum_at(&c, &p), 60);
    }

    #[test]
    fn aggregate_at_empty_qualifying_set_is_none_not_garbage() {
        // the empty-set audit: MIN/MAX/AVG over zero qualifying rows must be
        // None (COUNT is 0 and SUM is the empty sum), never a sentinel like
        // 0/i64::MIN/i64::MAX that a caller could mistake for data
        let c = Column::from_i64(vec![10, 20, 30]);
        let empty = PositionList::new();
        let a = aggregate_at(&c, &empty);
        assert_eq!(a.count, 0);
        assert_eq!(a.sum, 0);
        assert_eq!(a.min, None);
        assert_eq!(a.max, None);
        assert_eq!(a.avg(), None);
        assert_eq!(sum_at(&c, &empty), 0);
    }

    #[test]
    fn aggregate_at_wrong_type() {
        let c = Column::from_f64(vec![1.0]);
        let p = PositionList::from_vec(vec![0]);
        assert_eq!(aggregate_at(&c, &p).count, 0);
        assert_eq!(sum_at(&c, &p), 0);
    }

    #[test]
    fn accumulate_handles_extremes() {
        let mut a = Aggregate::empty();
        a.accumulate(Key::MAX);
        a.accumulate(Key::MAX);
        assert_eq!(a.sum, Key::MAX as i128 * 2);
        assert_eq!(a.min, Some(Key::MAX));
    }
}
