//! Full-scan selection over a column.
//!
//! `scan_select_*` are the baseline (non-adaptive) selection operators: they
//! read the whole dense array and emit qualifying positions. The cracking
//! select operator in `aidx-cracking` answers the same predicate shapes but
//! additionally reorganizes its copy of the column.

use crate::column::{Column, FixedColumn};
use crate::position::PositionList;
use crate::segment::{Segment, ZoneMap};
use crate::types::{Key, RowId};

/// Block size used for the vectorized scan loop. One block of positions is
/// collected at a time before being appended to the output, mirroring
/// vector-at-a-time execution.
pub const SCAN_BLOCK_SIZE: usize = 1024;

/// A selection predicate over a key column.
///
/// Ranges are half-open `[low, high)`, the convention used throughout the
/// cracking literature (a query asks for `low <= v < high`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// `low <= v < high`
    Range {
        /// Inclusive lower bound.
        low: Key,
        /// Exclusive upper bound.
        high: Key,
    },
    /// `v < high`
    LessThan {
        /// Exclusive upper bound.
        high: Key,
    },
    /// `v >= low`
    GreaterEqual {
        /// Inclusive lower bound.
        low: Key,
    },
    /// `v == value`
    Equals {
        /// The probed value.
        value: Key,
    },
}

impl Predicate {
    /// Convenience constructor for a half-open range `[low, high)`.
    pub fn range(low: Key, high: Key) -> Self {
        Predicate::Range { low, high }
    }

    /// Convenience constructor for an equality predicate.
    pub fn equals(value: Key) -> Self {
        Predicate::Equals { value }
    }

    /// Evaluate the predicate for one value.
    #[inline]
    pub fn matches(&self, v: Key) -> bool {
        match *self {
            Predicate::Range { low, high } => v >= low && v < high,
            Predicate::LessThan { high } => v < high,
            Predicate::GreaterEqual { low } => v >= low,
            Predicate::Equals { value } => v == value,
        }
    }

    /// The predicate expressed as a closed-open `[low, high)` interval over
    /// the full key domain. Equality becomes `[v, v+1)`.
    pub fn as_bounds(&self) -> (Key, Key) {
        match *self {
            Predicate::Range { low, high } => (low, high),
            Predicate::LessThan { high } => (Key::MIN, high),
            Predicate::GreaterEqual { low } => (low, Key::MAX),
            Predicate::Equals { value } => (value, value.saturating_add(1)),
        }
    }

    /// Whether a chunk with the given zone map *may* contain a qualifying
    /// value. `false` is a proof of absence (the chunk can be pruned);
    /// `true` only means the chunk must be scanned.
    #[inline]
    pub fn zone_may_match(&self, zone: &ZoneMap<Key>) -> bool {
        match *self {
            Predicate::Range { low, high } => zone.may_contain_range(low, high),
            Predicate::LessThan { high } => zone.min().is_some_and(|min| min < high),
            Predicate::GreaterEqual { low } => zone.max().is_some_and(|max| max >= low),
            Predicate::Equals { value } => zone.may_contain(value),
        }
    }
}

/// How much a chunk-at-a-time scan actually touched: chunks whose zone map
/// proved them irrelevant are *pruned* without reading a single value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Chunks whose values were scanned.
    pub chunks_scanned: usize,
    /// Chunks skipped entirely thanks to their zone map.
    pub chunks_pruned: usize,
}

impl PruneStats {
    /// Fold another scan's statistics into this one (alias for `+=`).
    pub fn merge(&mut self, other: PruneStats) {
        *self += other;
    }

    /// Total chunks considered (scanned + pruned).
    pub fn chunks_total(&self) -> usize {
        self.chunks_scanned + self.chunks_pruned
    }

    /// Fraction of considered chunks the zone maps pruned (0.0 when no
    /// chunks were considered at all).
    pub fn pruned_fraction(&self) -> f64 {
        match self.chunks_total() {
            0 => 0.0,
            total => self.chunks_pruned as f64 / total as f64,
        }
    }
}

/// `PruneStats` aggregate per chunk, so folding the per-worker statistics of
/// a parallel scan with `+=` yields exactly the totals the serial scan
/// reports — field-wise addition, no averaging or clamping.
impl std::ops::AddAssign for PruneStats {
    fn add_assign(&mut self, other: PruneStats) {
        self.chunks_scanned += other.chunks_scanned;
        self.chunks_pruned += other.chunks_pruned;
    }
}

impl std::ops::Add for PruneStats {
    type Output = PruneStats;
    fn add(mut self, other: PruneStats) -> PruneStats {
        self += other;
        self
    }
}

impl std::iter::Sum for PruneStats {
    fn sum<I: Iterator<Item = PruneStats>>(iter: I) -> PruneStats {
        iter.fold(PruneStats::default(), |acc, s| acc + s)
    }
}

/// Scan a dense key slice and return the positions of qualifying values.
pub fn scan_select_keys(keys: &[Key], predicate: &Predicate) -> PositionList {
    let mut out: Vec<RowId> = Vec::new();
    let mut block: Vec<RowId> = Vec::with_capacity(SCAN_BLOCK_SIZE);
    for (chunk_index, chunk) in keys.chunks(SCAN_BLOCK_SIZE).enumerate() {
        let base = (chunk_index * SCAN_BLOCK_SIZE) as RowId;
        block.clear();
        for (i, &v) in chunk.iter().enumerate() {
            if predicate.matches(v) {
                block.push(base + i as RowId);
            }
        }
        out.extend_from_slice(&block);
    }
    PositionList::from_sorted_vec(out)
}

/// Scan an `Int64` [`FixedColumn`] with a range predicate.
pub fn scan_select_fixed(column: &FixedColumn<Key>, predicate: &Predicate) -> PositionList {
    scan_select_keys(column.as_slice(), predicate)
}

/// The shared chunk-at-a-time scan kernel: chunks failing `zone_may_match`
/// are skipped without touching their values; positions of values passing
/// `matches` are emitted in order.
///
/// The two predicate vocabularies of the workspace (this module's
/// [`Predicate`] and the kernel facade's conjunctive predicates) both scan
/// through this one loop, so pruning accounting and position emission can
/// never diverge between them.
pub fn scan_segment_where(
    segment: &Segment<Key>,
    zone_may_match: impl Fn(&crate::segment::ZoneMap<Key>) -> bool,
    matches: impl Fn(Key) -> bool,
) -> (PositionList, PruneStats) {
    let mut out: Vec<RowId> = Vec::new();
    let mut stats = PruneStats::default();
    for chunk in segment.chunks() {
        scan_chunk_where(&chunk, &zone_may_match, &matches, &mut out, &mut stats);
    }
    (PositionList::from_sorted_vec(out), stats)
}

/// Scan (or zone-prune) one chunk: the per-chunk unit of work shared by the
/// serial segment scan above and the chunk-parallel scan in `aidx-parallel`.
/// Qualifying global positions are appended to `out` in order and the chunk
/// is accounted in `stats`, so serial and parallel scans produce identical
/// position sets and identical pruning statistics by construction.
pub fn scan_chunk_where(
    chunk: &crate::segment::ChunkView<'_, Key>,
    zone_may_match: impl Fn(&crate::segment::ZoneMap<Key>) -> bool,
    matches: impl Fn(Key) -> bool,
    out: &mut Vec<RowId>,
    stats: &mut PruneStats,
) {
    if !zone_may_match(&chunk.zone) {
        stats.chunks_pruned += 1;
        return;
    }
    stats.chunks_scanned += 1;
    for (i, &v) in chunk.values.iter().enumerate() {
        if matches(v) {
            out.push(chunk.base + i as RowId);
        }
    }
}

/// Filter the candidate positions of one chunk: the per-chunk unit of the
/// residual (late-materialized) filter step, shared by the serial executor
/// path and the chunk-parallel residual filter in `aidx-parallel` — so
/// serial and parallel residual filtering produce identical position sets
/// and identical pruning statistics by construction.
///
/// `candidates` must all fall inside `chunk` (callers split the global
/// candidate list by chunk bounds). A chunk whose zone map cannot satisfy
/// the predicate rejects all its candidates without reading a value.
pub fn filter_chunk_positions(
    chunk: &crate::segment::ChunkView<'_, Key>,
    candidates: &[RowId],
    zone_may_match: impl Fn(&crate::segment::ZoneMap<Key>) -> bool,
    matches: impl Fn(Key) -> bool,
    out: &mut Vec<RowId>,
    stats: &mut PruneStats,
) {
    debug_assert!(candidates
        .iter()
        .all(|&p| p >= chunk.base && p < chunk.end()));
    if !zone_may_match(&chunk.zone) {
        stats.chunks_pruned += 1;
        return;
    }
    stats.chunks_scanned += 1;
    for &p in candidates {
        if matches(chunk.values[(p - chunk.base) as usize]) {
            out.push(p);
        }
    }
}

/// Scan a chunked key [`Segment`] with a range predicate, chunk-at-a-time:
/// chunks whose zone map cannot satisfy the predicate are skipped without
/// touching their values. Returns the qualifying positions plus pruning
/// statistics.
pub fn scan_select_segment(
    segment: &Segment<Key>,
    predicate: &Predicate,
) -> (PositionList, PruneStats) {
    scan_segment_where(
        segment,
        |zone| predicate.zone_may_match(zone),
        |v| predicate.matches(v),
    )
}

/// Scan a typed [`Column`] with a range predicate (chunk-at-a-time with
/// zone-map pruning; see [`scan_select_segment`] for the variant that also
/// reports pruning statistics).
///
/// Non-integer columns return an empty position list: the adaptive indexing
/// workloads only place range predicates on key columns, and the kernel layer
/// validates column types before planning.
pub fn scan_select_range(column: &Column, predicate: &Predicate) -> PositionList {
    match column.as_i64() {
        Some(keys) => scan_select_segment(keys, predicate).0,
        None => PositionList::new(),
    }
}

/// Count qualifying values without materializing positions (used by
/// aggregate-only queries and by cost accounting).
pub fn scan_count(keys: &[Key], predicate: &Predicate) -> usize {
    keys.iter().filter(|&&v| predicate.matches(v)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_matches() {
        let p = Predicate::range(10, 20);
        assert!(p.matches(10));
        assert!(p.matches(19));
        assert!(!p.matches(20));
        assert!(!p.matches(9));
        assert!(Predicate::LessThan { high: 5 }.matches(4));
        assert!(!Predicate::LessThan { high: 5 }.matches(5));
        assert!(Predicate::GreaterEqual { low: 5 }.matches(5));
        assert!(!Predicate::GreaterEqual { low: 5 }.matches(4));
        assert!(Predicate::equals(7).matches(7));
        assert!(!Predicate::equals(7).matches(8));
    }

    #[test]
    fn predicate_bounds() {
        assert_eq!(Predicate::range(1, 5).as_bounds(), (1, 5));
        assert_eq!(Predicate::LessThan { high: 5 }.as_bounds(), (Key::MIN, 5));
        assert_eq!(
            Predicate::GreaterEqual { low: 5 }.as_bounds(),
            (5, Key::MAX)
        );
        assert_eq!(Predicate::equals(7).as_bounds(), (7, 8));
        assert_eq!(
            Predicate::equals(Key::MAX).as_bounds(),
            (Key::MAX, Key::MAX)
        );
    }

    #[test]
    fn scan_select_small() {
        let keys = vec![5, 1, 9, 3, 7, 2, 8];
        let p = scan_select_keys(&keys, &Predicate::range(3, 8));
        assert_eq!(p.as_slice(), &[0, 3, 4]);
    }

    #[test]
    fn scan_select_crosses_block_boundary() {
        let n = SCAN_BLOCK_SIZE * 3 + 17;
        let keys: Vec<Key> = (0..n as Key).collect();
        let p = scan_select_keys(&keys, &Predicate::range(100, (n as Key) - 100));
        assert_eq!(p.len(), n - 200);
        assert_eq!(p.as_slice()[0], 100);
        assert_eq!(*p.as_slice().last().unwrap(), (n - 101) as RowId);
    }

    #[test]
    fn scan_select_column_dispatch() {
        let c = Column::from_i64(vec![4, 8, 15, 16, 23, 42]);
        let p = scan_select_range(&c, &Predicate::range(8, 23));
        assert_eq!(p.as_slice(), &[1, 2, 3]);
        let f = Column::from_f64(vec![1.0, 2.0]);
        assert!(scan_select_range(&f, &Predicate::range(0, 10)).is_empty());
    }

    #[test]
    fn scan_count_matches_select_len() {
        let keys: Vec<Key> = (0..5000).map(|i| (i * 7919) % 1000).collect();
        let pred = Predicate::range(100, 300);
        assert_eq!(
            scan_count(&keys, &pred),
            scan_select_keys(&keys, &pred).len()
        );
    }

    #[test]
    fn segment_scan_prunes_non_overlapping_chunks() {
        // sorted data in chunks of 100: each chunk covers a disjoint range
        let seg = Segment::from_vec_with_capacity((0..1000).collect(), 100);
        let pred = Predicate::range(250, 340);
        let (positions, stats) = scan_select_segment(&seg, &pred);
        assert_eq!(positions.len(), 90);
        assert_eq!(positions.as_slice()[0], 250);
        assert_eq!(
            stats.chunks_scanned, 2,
            "only chunks [200,300) and [300,400)"
        );
        assert_eq!(stats.chunks_pruned, 8);
        assert_eq!(stats.chunks_total(), 10);
        // agreement with the flat scan
        let flat = scan_select_keys(&seg.to_vec(), &pred);
        assert_eq!(positions, flat);
    }

    #[test]
    fn segment_scan_out_of_domain_prunes_everything() {
        let seg = Segment::from_vec_with_capacity((0..100).collect(), 16);
        let (positions, stats) = scan_select_segment(&seg, &Predicate::range(500, 600));
        assert!(positions.is_empty());
        assert_eq!(stats.chunks_scanned, 0);
        assert_eq!(stats.chunks_pruned, 7, "6 sealed + tail");
    }

    #[test]
    fn zone_may_match_all_predicate_shapes() {
        let zone = ZoneMap::from_values(&[10, 20]);
        assert!(Predicate::range(5, 11).zone_may_match(&zone));
        assert!(!Predicate::range(21, 30).zone_may_match(&zone));
        assert!(Predicate::LessThan { high: 11 }.zone_may_match(&zone));
        assert!(!Predicate::LessThan { high: 10 }.zone_may_match(&zone));
        assert!(Predicate::GreaterEqual { low: 20 }.zone_may_match(&zone));
        assert!(!Predicate::GreaterEqual { low: 21 }.zone_may_match(&zone));
        assert!(Predicate::equals(15).zone_may_match(&zone));
        assert!(!Predicate::equals(9).zone_may_match(&zone));
        // Equals at Key::MAX must not be mis-pruned by the half-open encoding
        let extreme = ZoneMap::from_values(&[Key::MAX]);
        assert!(Predicate::equals(Key::MAX).zone_may_match(&extreme));
        let empty: ZoneMap<Key> = ZoneMap::empty();
        assert!(!Predicate::range(Key::MIN, Key::MAX).zone_may_match(&empty));
    }

    #[test]
    fn prune_stats_merge() {
        let mut a = PruneStats {
            chunks_scanned: 1,
            chunks_pruned: 2,
        };
        a.merge(PruneStats {
            chunks_scanned: 3,
            chunks_pruned: 4,
        });
        assert_eq!(a.chunks_scanned, 4);
        assert_eq!(a.chunks_pruned, 6);
        assert_eq!(PruneStats::default().chunks_total(), 0);
    }

    #[test]
    fn prune_stats_add_assign_matches_serial_totals() {
        // splitting a scan into per-chunk stats and folding with += must
        // reconstruct exactly what the one-pass serial scan reports
        let seg = Segment::from_vec_with_capacity((0..1000).collect(), 100);
        let pred = Predicate::range(250, 340);
        let (_, serial) = scan_select_segment(&seg, &pred);
        let mut folded = PruneStats::default();
        let mut summed: Vec<PruneStats> = Vec::new();
        for chunk in seg.chunks() {
            let mut out = Vec::new();
            let mut per_chunk = PruneStats::default();
            scan_chunk_where(
                &chunk,
                |z| pred.zone_may_match(z),
                |v| pred.matches(v),
                &mut out,
                &mut per_chunk,
            );
            folded += per_chunk;
            summed.push(per_chunk);
        }
        assert_eq!(folded, serial);
        assert_eq!(summed.into_iter().sum::<PruneStats>(), serial);
        assert_eq!(
            folded + PruneStats::default(),
            serial,
            "adding an empty stat is the identity"
        );
        assert_eq!(folded.chunks_total(), serial.chunks_total());
    }

    #[test]
    fn scan_select_fixed_matches_slice_variant() {
        let col: FixedColumn<Key> = vec![3, 1, 4, 1, 5].into();
        let a = scan_select_fixed(&col, &Predicate::range(1, 4));
        let b = scan_select_keys(col.as_slice(), &Predicate::range(1, 4));
        assert_eq!(a, b);
    }
}
