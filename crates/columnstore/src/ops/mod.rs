//! Bulk, column-at-a-time operators.
//!
//! These are the non-adaptive building blocks: full-column scans with range
//! predicates ([`select`]), late-materializing projections ([`project`]),
//! aggregations ([`aggregate`]) and a hash join ([`join`]). The adaptive
//! operators in the other crates replace only the *selection* path; everything
//! downstream keeps consuming position lists from here.

pub mod aggregate;
pub mod join;
pub mod project;
pub mod select;
