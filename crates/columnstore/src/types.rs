//! Core scalar types shared by the whole workspace.
//!
//! The adaptive-indexing literature (and MonetDB, the system the paper's
//! prototype extends) indexes *sort attributes* that are fixed-width values.
//! We therefore fix the cracking key type to a 64-bit signed integer
//! ([`Key`]); other column types exist for realistic multi-column tables and
//! for tuple reconstruction experiments.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The key type every adaptive index in this workspace organizes.
///
/// Chosen as `i64` so that synthetic workloads, TPC-H-like attributes and
/// dictionary-encoded strings all map onto it without loss.
pub type Key = i64;

/// A row identifier (position within a column / table). MonetDB calls this an
/// *oid*. Positions are dense: row `i` of a table lives at position `i` of
/// every column of that table.
pub type RowId = u32;

/// Physical data types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (also the cracking key type).
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Dictionary-encoded UTF-8 string.
    Utf8,
}

impl DataType {
    /// Width in bytes of one value in the dense array representation.
    /// Strings are dictionary encoded, so the per-row footprint is the code.
    pub fn value_width(&self) -> usize {
        match self {
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Utf8 => 4,
        }
    }

    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Utf8 => "utf8",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar value, used at the API boundary (row appends,
/// query constants, result rendering). The hot paths never use `Value`; they
/// operate on the typed dense arrays directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer value.
    Int64(i64),
    /// 64-bit float value.
    Float64(f64),
    /// String value.
    Utf8(String),
    /// SQL NULL. The substrate stores nulls as sentinel-free explicit values
    /// only at the `Value` boundary; dense arrays are non-nullable.
    Null,
}

impl Value {
    /// The data type of this value, if it is not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Utf8(_) => Some(DataType::Utf8),
            Value::Null => None,
        }
    }

    /// Extract an `i64`, if this value holds one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `f64`, if this value holds one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice, if this value holds one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Utf8(s) => write!(f, "{s}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_widths() {
        assert_eq!(DataType::Int64.value_width(), 8);
        assert_eq!(DataType::Float64.value_width(), 8);
        assert_eq!(DataType::Utf8.value_width(), 4);
    }

    #[test]
    fn data_type_names_and_display() {
        assert_eq!(DataType::Int64.to_string(), "int64");
        assert_eq!(DataType::Float64.to_string(), "float64");
        assert_eq!(DataType::Utf8.to_string(), "utf8");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Int64(7).as_f64(), None);
        assert_eq!(Value::Float64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Utf8("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int64(0).is_null());
    }

    #[test]
    fn value_data_types() {
        assert_eq!(Value::Int64(1).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Float64(1.0).data_type(), Some(DataType::Float64));
        assert_eq!(Value::Utf8(String::new()).data_type(), Some(DataType::Utf8));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int64(3));
        assert_eq!(Value::from(3.5f64), Value::Float64(3.5));
        assert_eq!(Value::from("abc"), Value::Utf8("abc".to_owned()));
        assert_eq!(Value::from("abc".to_owned()), Value::Utf8("abc".to_owned()));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int64(-4).to_string(), "-4");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Utf8("hi".into()).to_string(), "hi");
    }
}
