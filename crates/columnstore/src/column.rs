//! Typed column storage over chunked segments.
//!
//! A [`Column`] wraps the supported types behind one enum so that tables can
//! hold heterogeneous columns; strings are dictionary-encoded so that their
//! dense representation is also fixed width (a `u32` code per row). Since the
//! segment-storage rework, every column is physically a [`Segment`]: a run of
//! immutable, `Arc`-shared sealed chunks plus one mutable tail chunk, each
//! sealed chunk carrying zone-map statistics.
//!
//! [`FixedColumn<T>`] — the original flat representation the cracking papers
//! assume — survives as a standalone dense-array helper: the adaptive index
//! structures (cracker columns, sorted runs) still build and reorganize flat
//! *copies* of the data, exactly as MonetDB does, so the base storage can be
//! chunked without the index kernels noticing.

use crate::error::{ColumnStoreError, Result};
use crate::position::PositionList;
use crate::segment::Segment;
use crate::types::{DataType, RowId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A dense, fixed-width, append-only array of `T`.
///
/// No longer the backing store of [`Column`] (segments are), but still the
/// representation the adaptive indexes copy base data into before
/// reorganizing it, and a convenient flat buffer for tests and kernels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FixedColumn<T> {
    data: Vec<T>,
}

impl<T: Copy> FixedColumn<T> {
    /// Create an empty column.
    pub fn new() -> Self {
        FixedColumn { data: Vec::new() }
    }

    /// Create an empty column with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        FixedColumn {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Build a column from an existing vector (no copy).
    pub fn from_vec(data: Vec<T>) -> Self {
        FixedColumn { data }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one value, returning its position.
    pub fn push(&mut self, value: T) -> RowId {
        let id = self.data.len() as RowId;
        self.data.push(value);
        id
    }

    /// Append many values.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.data.extend_from_slice(values);
    }

    /// Value at `position`, if in bounds.
    pub fn get(&self, position: usize) -> Option<T> {
        self.data.get(position).copied()
    }

    /// Value at `position`; panics when out of bounds (hot-path accessor).
    #[inline]
    pub fn value(&self, position: usize) -> T {
        self.data[position]
    }

    /// The underlying dense array.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the dense array (used only by update paths).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate over values.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.data.iter()
    }

    /// Consume the column, returning the dense array.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T: Copy + Ord> FixedColumn<T> {
    /// Minimum value, if the column is non-empty.
    pub fn min(&self) -> Option<T> {
        self.data.iter().copied().min()
    }

    /// Maximum value, if the column is non-empty.
    pub fn max(&self) -> Option<T> {
        self.data.iter().copied().max()
    }
}

impl<T: Copy> From<Vec<T>> for FixedColumn<T> {
    fn from(data: Vec<T>) -> Self {
        FixedColumn::from_vec(data)
    }
}

impl<T: Copy> FromIterator<T> for FixedColumn<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        FixedColumn {
            data: iter.into_iter().collect(),
        }
    }
}

/// A dictionary for string columns: maps strings to dense `u32` codes.
///
/// Codes are assigned in first-seen order, so equality predicates map to
/// equality on codes; range predicates on strings are answered by decoding
/// (they are rare in the adaptive indexing workloads).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dictionary {
    values: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern a string, returning its code (existing or newly assigned).
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.codes.get(value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value.to_owned());
        self.codes.insert(value.to_owned(), code);
        code
    }

    /// Code for a string, if it has been interned before.
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// String for a code.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }
}

/// A typed column: the substrate's unit of storage, physically a chunked
/// [`Segment`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Chunked `i64` segment.
    Int64(Segment<i64>),
    /// Chunked `f64` segment.
    Float64(Segment<f64>),
    /// Dictionary-encoded strings: chunked `u32` codes plus the dictionary.
    Utf8 {
        /// Per-row dictionary codes.
        codes: Segment<u32>,
        /// The dictionary shared by the column. Behind [`Arc`] so that the
        /// catalog's copy-on-write table clone is a reference-count bump for
        /// the dictionary: appending a row while a snapshot is alive only
        /// deep-copies the dictionary when the appended string is genuinely
        /// new (see [`Column::push_value`]).
        dictionary: Arc<Dictionary>,
    },
}

impl Column {
    /// Create an empty column of the given type with the default segment
    /// capacity.
    pub fn empty(data_type: DataType) -> Self {
        Column::empty_with_capacity(data_type, crate::segment::DEFAULT_SEGMENT_CAPACITY)
    }

    /// Create an empty column of the given type, sealing chunks of
    /// `capacity` rows.
    pub fn empty_with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64(Segment::with_chunk_capacity(capacity)),
            DataType::Float64 => Column::Float64(Segment::with_chunk_capacity(capacity)),
            DataType::Utf8 => Column::Utf8 {
                codes: Segment::with_chunk_capacity(capacity),
                dictionary: Arc::new(Dictionary::new()),
            },
        }
    }

    /// Build an `Int64` column from a vector.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::Int64(Segment::from_vec(values))
    }

    /// Build a `Float64` column from a vector.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::Float64(Segment::from_vec(values))
    }

    /// Build a `Utf8` column from string slices.
    pub fn from_strs(values: &[&str]) -> Self {
        let mut dictionary = Dictionary::new();
        let mut codes = Segment::new();
        for v in values {
            let code = dictionary.intern(v);
            codes.push(code);
        }
        Column::Utf8 {
            codes,
            dictionary: Arc::new(dictionary),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Utf8 { .. } => DataType::Utf8,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(c) => c.len(),
            Column::Float64(c) => c.len(),
            Column::Utf8 { codes, .. } => codes.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows per sealed chunk of the backing segment.
    pub fn segment_capacity(&self) -> usize {
        match self {
            Column::Int64(c) => c.chunk_capacity(),
            Column::Float64(c) => c.chunk_capacity(),
            Column::Utf8 { codes, .. } => codes.chunk_capacity(),
        }
    }

    /// The same rows re-chunked to `capacity` rows per chunk (a cheap clone
    /// sharing every sealed chunk when the capacity already matches).
    pub fn with_segment_capacity(&self, capacity: usize) -> Column {
        match self {
            Column::Int64(c) => Column::Int64(c.rechunked(capacity)),
            Column::Float64(c) => Column::Float64(c.rechunked(capacity)),
            Column::Utf8 { codes, dictionary } => Column::Utf8 {
                codes: codes.rechunked(capacity),
                dictionary: Arc::clone(dictionary),
            },
        }
    }

    /// Approximate in-memory footprint of the dense data in bytes
    /// (dictionary overhead excluded; it is shared and small for the
    /// synthetic workloads used here).
    pub fn byte_size(&self) -> usize {
        self.len() * self.data_type().value_width()
    }

    /// Seal the backing segment's mutable tail as an (undersized) immutable
    /// chunk; returns `true` when a chunk was sealed. The copy-on-write
    /// append path calls this so a writer under a live snapshot shares the
    /// former tail instead of deep-copying it (see [`Segment::seal_tail`]).
    pub fn seal_tail(&mut self) -> bool {
        match self {
            Column::Int64(c) => c.seal_tail(),
            Column::Float64(c) => c.seal_tail(),
            Column::Utf8 { codes, .. } => codes.seal_tail(),
        }
    }

    /// Row counts of the backing segment's sealed chunks, in chunk order
    /// (the observation a compaction policy plans over).
    pub fn sealed_chunk_lens(&self) -> Vec<usize> {
        match self {
            Column::Int64(c) => c.sealed_chunk_lens(),
            Column::Float64(c) => c.sealed_chunk_lens(),
            Column::Utf8 { codes, .. } => codes.sealed_chunk_lens(),
        }
    }

    /// Number of undersized sealed chunks in the backing segment.
    pub fn fragmented_chunk_count(&self) -> usize {
        match self {
            Column::Int64(c) => c.fragmented_chunk_count(),
            Column::Float64(c) => c.fragmented_chunk_count(),
            Column::Utf8 { codes, .. } => codes.fragmented_chunk_count(),
        }
    }

    /// The column with the given runs of sealed chunks merged into full
    /// chunks (see [`Segment::compact_runs`]): same values at the same
    /// positions, fewer and fuller chunks. Chunks outside the runs — and the
    /// string dictionary — are shared, not copied.
    pub fn compact_runs(&self, runs: &[(usize, usize)]) -> Column {
        match self {
            Column::Int64(c) => Column::Int64(c.compact_runs(runs)),
            Column::Float64(c) => Column::Float64(c.compact_runs(runs)),
            Column::Utf8 { codes, dictionary } => Column::Utf8 {
                codes: codes.compact_runs(runs),
                dictionary: Arc::clone(dictionary),
            },
        }
    }

    /// Append a dynamically typed value. Returns the new row's position.
    pub fn push_value(&mut self, column_name: &str, value: &Value) -> Result<RowId> {
        match (self, value) {
            (Column::Int64(c), Value::Int64(v)) => Ok(c.push(*v)),
            (Column::Float64(c), Value::Float64(v)) => Ok(c.push(*v)),
            (Column::Utf8 { codes, dictionary }, Value::Utf8(s)) => {
                // appending an already-interned string must not deep-clone a
                // dictionary shared with live snapshots; only a genuinely new
                // string pays the copy-on-write (and only while shared)
                let code = match dictionary.lookup(s) {
                    Some(code) => code,
                    None => Arc::make_mut(dictionary).intern(s),
                };
                Ok(codes.push(code))
            }
            (col, value) => Err(ColumnStoreError::TypeMismatch {
                column: column_name.to_owned(),
                expected: col.data_type(),
                found: value.data_type(),
            }),
        }
    }

    /// Read the value at `position` as a dynamically typed [`Value`].
    pub fn value_at(&self, position: usize) -> Result<Value> {
        let len = self.len();
        if position >= len {
            return Err(ColumnStoreError::PositionOutOfBounds {
                position: position as u64,
                len,
            });
        }
        Ok(match self {
            Column::Int64(c) => Value::Int64(c.value(position)),
            Column::Float64(c) => Value::Float64(c.value(position)),
            Column::Utf8 { codes, dictionary } => {
                let code = codes.value(position);
                Value::Utf8(
                    dictionary
                        .decode(code)
                        .expect("dictionary code out of range")
                        .to_owned(),
                )
            }
        })
    }

    /// Borrow the `i64` segment, if this is an `Int64` column.
    pub fn as_i64(&self) -> Option<&Segment<i64>> {
        match self {
            Column::Int64(c) => Some(c),
            _ => None,
        }
    }

    /// Borrow the `f64` segment, if this is a `Float64` column.
    pub fn as_f64(&self) -> Option<&Segment<f64>> {
        match self {
            Column::Float64(c) => Some(c),
            _ => None,
        }
    }

    /// Borrow the dictionary-code segment, if this is a `Utf8` column.
    pub fn as_utf8(&self) -> Option<(&Segment<u32>, &Dictionary)> {
        match self {
            Column::Utf8 { codes, dictionary } => Some((codes, dictionary.as_ref())),
            _ => None,
        }
    }

    /// The shared dictionary handle, if this is a `Utf8` column (exposed so
    /// tests can assert `Arc::ptr_eq` sharing across copy-on-write clones).
    pub fn utf8_dictionary(&self) -> Option<&Arc<Dictionary>> {
        match self {
            Column::Utf8 { dictionary, .. } => Some(dictionary),
            _ => None,
        }
    }

    /// Materialize the values at the given positions as dynamic values.
    pub fn gather(&self, positions: &PositionList) -> Result<Vec<Value>> {
        let len = self.len();
        if let Some(&last) = positions.as_slice().last() {
            if last as usize >= len {
                return Err(ColumnStoreError::PositionOutOfBounds {
                    position: last as u64,
                    len,
                });
            }
        }
        Ok(match self {
            Column::Int64(c) => c
                .gather_positions(positions.as_slice())
                .into_iter()
                .map(Value::Int64)
                .collect(),
            Column::Float64(c) => c
                .gather_positions(positions.as_slice())
                .into_iter()
                .map(Value::Float64)
                .collect(),
            Column::Utf8 { codes, dictionary } => codes
                .gather_positions(positions.as_slice())
                .into_iter()
                .map(|code| {
                    Value::Utf8(
                        dictionary
                            .decode(code)
                            .expect("dictionary code out of range")
                            .to_owned(),
                    )
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_column_basic_ops() {
        let mut c: FixedColumn<i64> = FixedColumn::new();
        assert!(c.is_empty());
        assert_eq!(c.push(5), 0);
        assert_eq!(c.push(3), 1);
        c.extend_from_slice(&[9, 1]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(2), Some(9));
        assert_eq!(c.get(10), None);
        assert_eq!(c.value(3), 1);
        assert_eq!(c.min(), Some(1));
        assert_eq!(c.max(), Some(9));
        assert_eq!(c.as_slice(), &[5, 3, 9, 1]);
        assert_eq!(c.iter().copied().sum::<i64>(), 18);
        assert_eq!(c.clone().into_vec(), vec![5, 3, 9, 1]);
    }

    #[test]
    fn fixed_column_from_iter_and_vec() {
        let c: FixedColumn<i64> = (0..5).collect();
        assert_eq!(c.as_slice(), &[0, 1, 2, 3, 4]);
        let c2: FixedColumn<i64> = vec![7, 8].into();
        assert_eq!(c2.len(), 2);
        let c3: FixedColumn<i64> = FixedColumn::with_capacity(16);
        assert!(c3.is_empty());
        assert!(c3.as_slice().is_empty());
    }

    #[test]
    fn dictionary_intern_and_decode() {
        let mut d = Dictionary::new();
        assert!(d.is_empty());
        let a = d.intern("apple");
        let b = d.intern("banana");
        let a2 = d.intern("apple");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(a), Some("apple"));
        assert_eq!(d.lookup("banana"), Some(b));
        assert_eq!(d.lookup("cherry"), None);
        assert_eq!(d.decode(99), None);
    }

    #[test]
    fn column_int64_push_and_read() {
        let mut c = Column::empty(DataType::Int64);
        c.push_value("a", &Value::Int64(42)).unwrap();
        c.push_value("a", &Value::Int64(7)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.value_at(0).unwrap(), Value::Int64(42));
        assert_eq!(c.byte_size(), 16);
        assert!(c.as_i64().is_some());
        assert!(c.as_f64().is_none());
    }

    #[test]
    fn column_type_mismatch_errors() {
        let mut c = Column::empty(DataType::Int64);
        let err = c.push_value("a", &Value::Utf8("x".into())).unwrap_err();
        assert!(matches!(err, ColumnStoreError::TypeMismatch { .. }));
        let err = c.push_value("a", &Value::Null).unwrap_err();
        assert!(matches!(err, ColumnStoreError::TypeMismatch { .. }));
    }

    #[test]
    fn column_out_of_bounds() {
        let c = Column::from_i64(vec![1, 2]);
        let err = c.value_at(5).unwrap_err();
        assert!(matches!(err, ColumnStoreError::PositionOutOfBounds { .. }));
        let err = c.gather(&PositionList::from_vec(vec![0, 9])).unwrap_err();
        assert!(matches!(err, ColumnStoreError::PositionOutOfBounds { .. }));
    }

    #[test]
    fn column_utf8_roundtrip() {
        let c = Column::from_strs(&["x", "y", "x"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Utf8);
        assert_eq!(c.value_at(2).unwrap(), Value::Utf8("x".into()));
        let (codes, dict) = c.as_utf8().unwrap();
        assert_eq!(codes.value(0), codes.value(2));
        assert_eq!(dict.len(), 2);
        let gathered = c.gather(&PositionList::from_vec(vec![0, 2])).unwrap();
        assert_eq!(
            gathered,
            vec![Value::Utf8("x".into()), Value::Utf8("x".into())]
        );
    }

    #[test]
    fn column_float64_and_gather() {
        let c = Column::from_f64(vec![0.5, 1.5, 2.5]);
        assert_eq!(c.value_at(1).unwrap(), Value::Float64(1.5));
        let positions = PositionList::from_vec(vec![0, 2]);
        let vals = c.gather(&positions).unwrap();
        assert_eq!(vals, vec![Value::Float64(0.5), Value::Float64(2.5)]);
        assert!(c.as_f64().is_some());
        assert!(c.as_utf8().is_none());
    }

    #[test]
    fn dictionary_is_arc_shared_until_a_new_string_appears() {
        let original = Column::from_strs(&["x", "y"]);
        let mut clone = original.clone();
        let before = Arc::clone(original.utf8_dictionary().unwrap());
        assert!(
            Arc::ptr_eq(&before, clone.utf8_dictionary().unwrap()),
            "cloning a column must not deep-copy the dictionary"
        );
        // appending an existing string keeps the shared dictionary
        clone.push_value("s", &Value::Utf8("y".into())).unwrap();
        assert!(Arc::ptr_eq(&before, clone.utf8_dictionary().unwrap()));
        // a genuinely new string pays the copy-on-write — and only the clone
        clone.push_value("s", &Value::Utf8("z".into())).unwrap();
        assert!(!Arc::ptr_eq(&before, clone.utf8_dictionary().unwrap()));
        assert_eq!(original.utf8_dictionary().unwrap().len(), 2);
        assert_eq!(clone.utf8_dictionary().unwrap().len(), 3);
        assert_eq!(clone.value_at(3).unwrap(), Value::Utf8("z".into()));
        // an unshared dictionary mutates in place without cloning (compare
        // raw pointers: holding an Arc would itself make it shared)
        let after = Arc::as_ptr(clone.utf8_dictionary().unwrap());
        clone.push_value("s", &Value::Utf8("w".into())).unwrap();
        assert_eq!(after, Arc::as_ptr(clone.utf8_dictionary().unwrap()));
        assert!(Column::from_i64(vec![1]).utf8_dictionary().is_none());
    }

    #[test]
    fn columns_are_chunked_segments() {
        let mut c = Column::empty_with_capacity(DataType::Int64, 4);
        assert_eq!(c.segment_capacity(), 4);
        for i in 0..10 {
            c.push_value("a", &Value::Int64(i)).unwrap();
        }
        let seg = c.as_i64().unwrap();
        assert_eq!(seg.sealed_chunk_count(), 2);
        assert_eq!(seg.tail().len(), 2);
        // re-chunking never changes logical contents
        let wide = c.with_segment_capacity(64);
        assert_eq!(wide.len(), 10);
        assert_eq!(wide.as_i64().unwrap().sealed_chunk_count(), 0);
        assert_eq!(wide.value_at(7).unwrap(), Value::Int64(7));
    }
}
