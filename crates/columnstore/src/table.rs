//! Tables and schemas.
//!
//! A table is a set of equally long columns. Tuples are *decomposed*: there is
//! no row storage, and tuple reconstruction happens late, by fetching values
//! per column for a position list.

use crate::column::Column;
use crate::error::{ColumnStoreError, Result};
use crate::position::PositionList;
use crate::segment::DEFAULT_SEGMENT_CAPACITY;
use crate::types::{DataType, RowId, Value};

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// Field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field data type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Create a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field with the given name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A decomposed (column-at-a-time) table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    row_count: usize,
}

impl Table {
    /// Create an empty table for the schema with the default segment
    /// capacity.
    pub fn new(schema: Schema) -> Self {
        Table::new_with_segment_capacity(schema, DEFAULT_SEGMENT_CAPACITY)
    }

    /// Create an empty table whose columns seal chunks of `segment_capacity`
    /// rows.
    pub fn new_with_segment_capacity(schema: Schema, segment_capacity: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty_with_capacity(f.data_type(), segment_capacity))
            .collect();
        Table {
            schema,
            columns,
            row_count: 0,
        }
    }

    /// Build a table directly from named columns (all must be equally long).
    pub fn from_columns(named: Vec<(&str, Column)>) -> Result<Self> {
        let mut fields = Vec::with_capacity(named.len());
        let mut columns = Vec::with_capacity(named.len());
        let mut row_count = None;
        for (name, column) in named {
            match row_count {
                None => row_count = Some(column.len()),
                Some(expected) if expected != column.len() => {
                    return Err(ColumnStoreError::LengthMismatch {
                        expected,
                        found: column.len(),
                    });
                }
                _ => {}
            }
            fields.push(Field::new(name, column.data_type()));
            columns.push(column);
        }
        Ok(Table {
            schema: Schema::new(fields),
            columns,
            row_count: row_count.unwrap_or(0),
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "column",
                name: name.to_owned(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Borrow a column by position in the schema.
    pub fn column_at(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Check that `values` forms a valid row for this schema (arity and
    /// per-column types) without mutating anything. Batch appenders call
    /// this for every row *before* applying any of them, so a bad row in
    /// the middle of a batch cannot leave a half-applied batch behind.
    pub fn validate_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(ColumnStoreError::ArityMismatch {
                expected: self.schema.arity(),
                found: values.len(),
            });
        }
        for (field, value) in self.schema.fields().iter().zip(values) {
            if value.data_type() != Some(field.data_type()) {
                return Err(ColumnStoreError::TypeMismatch {
                    column: field.name().to_owned(),
                    expected: field.data_type(),
                    found: value.data_type(),
                });
            }
        }
        Ok(())
    }

    /// Append a row of dynamically typed values (one per column, in schema
    /// order). Returns the new row id.
    ///
    /// Arity and every value's type are validated *before* the first column
    /// is touched, so a rejected row never leaves columns at ragged lengths.
    pub fn append_row(&mut self, values: &[Value]) -> Result<RowId> {
        self.validate_row(values)?;
        for (i, value) in values.iter().enumerate() {
            let name = self.schema.fields()[i].name().to_owned();
            self.columns[i].push_value(&name, value)?;
        }
        let id = self.row_count as RowId;
        self.row_count += 1;
        Ok(id)
    }

    /// Append many rows.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        for row in rows {
            self.append_row(row)?;
        }
        Ok(())
    }

    /// Reconstruct full tuples (all columns) for the given positions.
    /// This is the *late materialization* step.
    pub fn reconstruct(&self, positions: &PositionList) -> Result<Vec<Vec<Value>>> {
        let mut rows = Vec::with_capacity(positions.len());
        for p in positions.iter() {
            let mut row = Vec::with_capacity(self.schema.arity());
            for column in &self.columns {
                row.push(column.value_at(p as usize)?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Reconstruct tuples restricted to the named columns, in the given order.
    pub fn reconstruct_projection(
        &self,
        positions: &PositionList,
        column_names: &[&str],
    ) -> Result<Vec<Vec<Value>>> {
        let mut projected_columns = Vec::with_capacity(column_names.len());
        for name in column_names {
            projected_columns.push(self.column(name)?);
        }
        let mut rows = Vec::with_capacity(positions.len());
        for p in positions.iter() {
            let mut row = Vec::with_capacity(column_names.len());
            for column in &projected_columns {
                row.push(column.value_at(p as usize)?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Approximate in-memory footprint of all columns in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Rows per sealed chunk of the backing segments (the default capacity
    /// for a table with no columns).
    pub fn segment_capacity(&self) -> usize {
        self.columns
            .first()
            .map_or(DEFAULT_SEGMENT_CAPACITY, Column::segment_capacity)
    }

    /// Seal every column's mutable tail as an (undersized) immutable chunk.
    /// Returns `true` when the tails were non-empty and sealed.
    ///
    /// The catalog's copy-on-write append path calls this on the writer's
    /// private copy when a snapshot is alive: the tail is paid for once, at
    /// its current size, and the sealed chunk is shared with every later
    /// snapshot — so churn copies only the rows appended since the last
    /// seal, at the price of fragmenting the columns into undersized chunks
    /// that background compaction later merges.
    pub fn seal_tails(&mut self) -> bool {
        let mut sealed = false;
        for column in &mut self.columns {
            sealed |= column.seal_tail();
        }
        sealed
    }

    /// Total undersized sealed chunks across all columns.
    pub fn fragmented_chunk_count(&self) -> usize {
        self.columns
            .iter()
            .map(Column::fragmented_chunk_count)
            .sum()
    }

    /// Total sealed chunks across all columns.
    pub fn sealed_chunk_count(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.sealed_chunk_lens().len())
            .sum()
    }

    /// The table with one column's sealed-chunk runs merged (see
    /// [`Column::compact_runs`]); every other column is a cheap chunk-sharing
    /// clone. Row positions — and therefore every adaptive index built over
    /// the table — are unaffected.
    ///
    /// # Panics
    /// Panics when `column_index` is out of bounds.
    pub fn compact_column(&self, column_index: usize, runs: &[(usize, usize)]) -> Table {
        let mut columns = self.columns.clone();
        columns[column_index] = columns[column_index].compact_runs(runs);
        Table {
            schema: self.schema.clone(),
            columns,
            row_count: self.row_count,
        }
    }

    /// The table with several columns replaced at once; untouched columns
    /// are cheap chunk-sharing clones. The parallel compaction path merges
    /// each column's fragment runs on a worker and then swaps all the
    /// results in with a single call, so the table is published once per
    /// maintenance tick instead of once per column.
    ///
    /// # Panics
    /// Panics when an index is out of bounds or a replacement changes the
    /// column's length or type (compaction is layout-only by contract).
    pub fn replace_columns(&self, replacements: Vec<(usize, Column)>) -> Table {
        let mut columns = self.columns.clone();
        for (index, column) in replacements {
            assert_eq!(
                column.len(),
                self.row_count,
                "replacement column must keep the row count"
            );
            assert_eq!(
                column.data_type(),
                columns[index].data_type(),
                "replacement column must keep the type"
            );
            columns[index] = column;
        }
        Table {
            schema: self.schema.clone(),
            columns,
            row_count: self.row_count,
        }
    }

    /// The same rows re-chunked so every column seals chunks of `capacity`
    /// rows. A no-op clone (sharing all sealed chunks) when the capacity
    /// already matches.
    pub fn with_segment_capacity(&self, capacity: usize) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.with_segment_capacity(capacity))
                .collect(),
            row_count: self.row_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_column_table() -> Table {
        let mut t = Table::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]));
        t.append_row(&[Value::Int64(1), Value::Utf8("one".into())])
            .unwrap();
        t.append_row(&[Value::Int64(2), Value::Utf8("two".into())])
            .unwrap();
        t.append_row(&[Value::Int64(3), Value::Utf8("three".into())])
            .unwrap();
        t
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
        ]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.field("a").unwrap().data_type(), DataType::Int64);
        assert_eq!(s.fields()[1].name(), "b");
    }

    #[test]
    fn append_and_read_rows() {
        let t = two_column_table();
        assert_eq!(t.row_count(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.column("a").unwrap().len(), 3);
        assert_eq!(
            t.column("name").unwrap().value_at(1).unwrap(),
            Value::Utf8("two".into())
        );
        assert!(t.column("missing").is_err());
        assert!(t.column_at(0).is_some());
        assert!(t.column_at(9).is_none());
        assert!(t.byte_size() > 0);
    }

    #[test]
    fn append_arity_and_type_errors() {
        let mut t = two_column_table();
        let err = t.append_row(&[Value::Int64(4)]).unwrap_err();
        assert!(matches!(err, ColumnStoreError::ArityMismatch { .. }));
        let err = t
            .append_row(&[Value::Utf8("x".into()), Value::Utf8("y".into())])
            .unwrap_err();
        assert!(matches!(err, ColumnStoreError::TypeMismatch { .. }));
    }

    #[test]
    fn append_rows_bulk() {
        let mut t = two_column_table();
        t.append_rows(&[
            vec![Value::Int64(4), Value::Utf8("four".into())],
            vec![Value::Int64(5), Value::Utf8("five".into())],
        ])
        .unwrap();
        assert_eq!(t.row_count(), 5);
    }

    #[test]
    fn reconstruct_full_and_projection() {
        let t = two_column_table();
        let positions = PositionList::from_vec(vec![0, 2]);
        let rows = t.reconstruct(&positions).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec![Value::Int64(3), Value::Utf8("three".into())]);
        let proj = t.reconstruct_projection(&positions, &["name"]).unwrap();
        assert_eq!(
            proj,
            vec![
                vec![Value::Utf8("one".into())],
                vec![Value::Utf8("three".into())]
            ]
        );
        assert!(t.reconstruct_projection(&positions, &["nope"]).is_err());
    }

    #[test]
    fn rejected_append_leaves_no_partial_row() {
        let mut t = two_column_table();
        // int value is valid for column 0, string column gets an int: the
        // row must be rejected before column 0 grows
        let err = t
            .append_row(&[Value::Int64(4), Value::Int64(5)])
            .unwrap_err();
        assert!(matches!(err, ColumnStoreError::TypeMismatch { .. }));
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column("a").unwrap().len(), 3, "no ragged columns");
        assert_eq!(t.column("name").unwrap().len(), 3);
    }

    #[test]
    fn replace_columns_swaps_in_bulk_and_shares_the_rest() {
        let t = two_column_table();
        let merged = t.column("a").unwrap().compact_runs(&[]);
        let replaced = t.replace_columns(vec![(0, merged)]);
        assert_eq!(replaced.row_count(), t.row_count());
        for row in 0..t.row_count() {
            for col in 0..2 {
                assert_eq!(
                    replaced.column_at(col).unwrap().value_at(row).unwrap(),
                    t.column_at(col).unwrap().value_at(row).unwrap()
                );
            }
        }
        // an empty replacement list is a plain clone
        assert_eq!(t.replace_columns(vec![]).row_count(), 3);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn replace_columns_rejects_length_drift() {
        let t = two_column_table();
        t.replace_columns(vec![(0, Column::from_i64(vec![1]))]);
    }

    #[test]
    fn segment_capacity_is_plumbed_through() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int64)]);
        let mut t = Table::new_with_segment_capacity(schema, 4);
        assert_eq!(t.segment_capacity(), 4);
        for i in 0..10 {
            t.append_row(&[Value::Int64(i)]).unwrap();
        }
        assert_eq!(
            t.column("a")
                .unwrap()
                .as_i64()
                .unwrap()
                .sealed_chunk_count(),
            2
        );
        let rechunked = t.with_segment_capacity(16);
        assert_eq!(rechunked.segment_capacity(), 16);
        assert_eq!(rechunked.row_count(), 10);
        assert_eq!(
            rechunked.column("a").unwrap().value_at(9).unwrap(),
            Value::Int64(9)
        );
        // a column-less table reports the default
        assert_eq!(
            Table::new(Schema::default()).segment_capacity(),
            DEFAULT_SEGMENT_CAPACITY
        );
    }

    #[test]
    fn from_columns_checks_lengths() {
        let ok = Table::from_columns(vec![
            ("a", Column::from_i64(vec![1, 2, 3])),
            ("b", Column::from_f64(vec![0.1, 0.2, 0.3])),
        ])
        .unwrap();
        assert_eq!(ok.row_count(), 3);
        assert_eq!(ok.schema().arity(), 2);

        let err = Table::from_columns(vec![
            ("a", Column::from_i64(vec![1, 2, 3])),
            ("b", Column::from_i64(vec![1])),
        ])
        .unwrap_err();
        assert!(matches!(err, ColumnStoreError::LengthMismatch { .. }));

        let empty = Table::from_columns(vec![]).unwrap();
        assert!(empty.is_empty());
    }
}
