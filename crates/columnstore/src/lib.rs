//! # aidx-columnstore
//!
//! An in-memory column-store substrate in the spirit of MonetDB's storage and
//! execution model, providing exactly the properties that the adaptive
//! indexing literature (database cracking and friends) relies on:
//!
//! * **Chunked append-only segments** as the physical representation of a
//!   column ([`segment::Segment`], [`column::Column`]): a run of immutable,
//!   `Arc`-shared sealed chunks (each carrying [`segment::ZoneMap`]
//!   min/max/count statistics) plus one mutable tail chunk. A row is
//!   identified by its stable global position (a *row id* / *oid*);
//!   `(chunk, offset)` is derived arithmetically because sealed chunks are
//!   always exactly full. Copy-on-write appends share every sealed chunk and
//!   clone only the tail, so writes under live snapshots cost `O(chunk)`,
//!   not `O(table)`.
//! * **Bulk, column-at-a-time operators** ([`ops`]): selections produce
//!   position lists, projections fetch attribute values for position lists
//!   (*late tuple reconstruction*), aggregations consume either whole columns
//!   or position lists.
//! * **Late materialization**: intermediate results are [`position::PositionList`]s
//!   rather than rows, so that reconstruction only touches the columns a query
//!   actually needs.
//! * **Snapshot-friendly catalog**: [`catalog::Catalog`] stores tables behind
//!   `Arc`, so a reader can take a cheap point-in-time snapshot
//!   ([`catalog::Catalog::table_arc`]) and keep streaming rows out of it while
//!   writers append copy-on-write — the isolation the kernel's streaming
//!   result iterators are built on.
//!
//! The crate deliberately contains *no* indexing: it is the substrate on which
//! `aidx-cracking`, `aidx-merging`, `aidx-hybrids` and `aidx-baselines` build.
//!
//! ## Quick example
//!
//! ```
//! use aidx_columnstore::prelude::*;
//!
//! let mut table = Table::new(Schema::new(vec![
//!     Field::new("a", DataType::Int64),
//!     Field::new("b", DataType::Int64),
//! ]));
//! table.append_row(&[Value::Int64(10), Value::Int64(100)]).unwrap();
//! table.append_row(&[Value::Int64(20), Value::Int64(200)]).unwrap();
//! table.append_row(&[Value::Int64(30), Value::Int64(300)]).unwrap();
//!
//! // select a from table where 15 <= a < 25 (bulk scan producing positions)
//! let positions = aidx_columnstore::ops::select::scan_select_range(
//!     table.column("a").unwrap(), &Predicate::range(15, 25));
//! // late materialization: fetch b for qualifying positions
//! let b = aidx_columnstore::ops::project::fetch_i64(table.column("b").unwrap(), &positions);
//! assert_eq!(b, vec![200]);
//! ```

pub mod catalog;
pub mod column;
pub mod error;
pub mod ops;
pub mod position;
pub mod segment;
pub mod stats;
pub mod table;
pub mod types;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::catalog::{Catalog, TableVersion};
    pub use crate::column::{Column, FixedColumn};
    pub use crate::error::{ColumnStoreError, Result};
    pub use crate::ops::select::{Predicate, PruneStats};
    pub use crate::position::PositionList;
    pub use crate::segment::{Segment, ZoneMap, DEFAULT_SEGMENT_CAPACITY};
    pub use crate::table::{Field, Schema, Table};
    pub use crate::types::{DataType, Key, RowId, Value};
}

pub use catalog::{Catalog, TableVersion};
pub use column::{Column, FixedColumn};
pub use error::{ColumnStoreError, Result};
pub use ops::select::PruneStats;
pub use position::PositionList;
pub use segment::{Segment, ZoneMap, DEFAULT_SEGMENT_CAPACITY};
pub use table::{Field, Schema, Table};
pub use types::{DataType, Key, RowId, Value};
