//! A minimal catalog: named tables living in one in-memory database.

use crate::error::{ColumnStoreError, Result};
use crate::table::Table;
use std::collections::BTreeMap;

/// A catalog of named tables.
///
/// The catalog is deliberately simple: the adaptive indexing experiments work
/// against one or a few tables, but the kernel layer (`aidx-core`) needs a
/// stable place to resolve table names and enumerate columns when deciding
/// which adaptive indexes to maintain.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under `name`. Fails if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(ColumnStoreError::AlreadyExists {
                kind: "table",
                name,
            });
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Drop a table; returns it if it existed.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn small_table() -> Table {
        Table::from_columns(vec![("a", Column::from_i64(vec![1, 2, 3]))]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.create_table("t", small_table()).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().row_count(), 3);
        assert!(c.table("missing").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
        assert!(c.drop_table("t").is_some());
        assert!(c.drop_table("t").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let err = c.create_table("t", small_table()).unwrap_err();
        assert!(matches!(err, ColumnStoreError::AlreadyExists { .. }));
    }

    #[test]
    fn table_mut_allows_appends() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        {
            let t = c.table_mut("t").unwrap();
            t.append_row(&[crate::types::Value::Int64(4)]).unwrap();
        }
        assert_eq!(c.table("t").unwrap().row_count(), 4);
        assert!(c.table_mut("missing").is_err());
    }
}
