//! A minimal catalog: named tables living in one in-memory database.

use crate::error::{ColumnStoreError, Result};
use crate::table::Table;
use crate::types::{RowId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The version of one table incarnation: a structural *epoch* plus an
/// append-only *sub-version*.
///
/// * `epoch` changes when the table is dropped and re-created under the same
///   name, **or** when a caller takes structural mutable access via
///   [`Catalog::table_mut`]. Derived state (adaptive indexes) keyed on an
///   older epoch is stale and must be rebuilt.
/// * `append_seq` counts pure tail-appends within the epoch. Appends extend
///   the same table with new rows at new positions, so derived state remains
///   a valid *prefix* — an index can absorb the new rows or rebuild
///   incrementally, but it must never be treated as belonging to a different
///   table.
///
/// Before this split, every mutation looked the same to the index layer and
/// a pure append was indistinguishable from a potential drop/re-create.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableVersion {
    /// Structural incarnation number (fresh after drop + re-create and after
    /// structural mutable access).
    pub epoch: u64,
    /// Number of append operations applied within this epoch.
    pub append_seq: u64,
}

/// A catalog of named tables.
///
/// The catalog is deliberately simple: the adaptive indexing experiments work
/// against one or a few tables, but the kernel layer (`aidx-core`) needs a
/// stable place to resolve table names and enumerate columns when deciding
/// which adaptive indexes to maintain.
///
/// Tables are stored behind [`Arc`] so that a reader can take a cheap
/// point-in-time snapshot ([`Catalog::table_arc`]) and keep streaming rows
/// out of it while writers move the catalog forward. Writes are
/// copy-on-write, and because tables are backed by chunked segments, the
/// copy made while a snapshot is alive shares every sealed chunk and clones
/// only each column's mutable tail — `O(chunk)`, not `O(table)`.
///
/// Mutation comes in two flavors with different version semantics (see
/// [`TableVersion`]):
///
/// * [`Catalog::append_row`] / [`Catalog::append_rows`] — append-only growth;
///   keeps the epoch, bumps `append_seq`.
/// * [`Catalog::table_mut`] — arbitrary structural access; stamps a fresh
///   epoch because the catalog cannot prove the caller only appended.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
    next_epoch: u64,
}

#[derive(Debug, Clone)]
struct TableEntry {
    table: Arc<Table>,
    version: TableVersion,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under `name`. Fails if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(ColumnStoreError::AlreadyExists {
                kind: "table",
                name,
            });
        }
        self.next_epoch += 1;
        self.tables.insert(
            name,
            TableEntry {
                table: Arc::new(table),
                version: TableVersion {
                    epoch: self.next_epoch,
                    append_seq: 0,
                },
            },
        );
        Ok(())
    }

    /// Drop a table; returns it if it existed.
    pub fn drop_table(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name).map(|entry| entry.table)
    }

    fn entry(&self, name: &str) -> Result<&TableEntry> {
        self.tables
            .get(name)
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    fn entry_mut(&mut self, name: &str) -> Result<&mut TableEntry> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        Ok(self.entry(name)?.table.as_ref())
    }

    /// A point-in-time snapshot of a table, cheap to clone and safe to keep
    /// reading after the catalog has moved on.
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>> {
        Ok(Arc::clone(&self.entry(name)?.table))
    }

    /// A snapshot plus the epoch of the table's current incarnation.
    pub fn table_snapshot(&self, name: &str) -> Result<(Arc<Table>, u64)> {
        let entry = self.entry(name)?;
        Ok((Arc::clone(&entry.table), entry.version.epoch))
    }

    /// A snapshot plus the full [`TableVersion`] it was taken at.
    pub fn table_snapshot_versioned(&self, name: &str) -> Result<(Arc<Table>, TableVersion)> {
        let entry = self.entry(name)?;
        Ok((Arc::clone(&entry.table), entry.version))
    }

    /// The epoch of the table's current incarnation (stable across appends,
    /// fresh after drop + re-create or structural mutable access).
    pub fn table_epoch(&self, name: &str) -> Result<u64> {
        Ok(self.entry(name)?.version.epoch)
    }

    /// The table's current [`TableVersion`] (epoch + append sub-version).
    pub fn table_version(&self, name: &str) -> Result<TableVersion> {
        Ok(self.entry(name)?.version)
    }

    /// Append one row to `name` (copy-on-write: when a snapshot is alive,
    /// the write goes to a private copy that shares every sealed chunk and
    /// clones only each column's mutable tail — and then *seals* those
    /// cloned tails before appending). Keeps the epoch and bumps the append
    /// sub-version; returns the new row id.
    ///
    /// Sealing on the copy-on-write path is what keeps churn cheap: the
    /// clone pays for the tail once, at whatever size it currently has, and
    /// the seal empties it — so the *next* append under a snapshot copies
    /// only the rows appended since (typically one), instead of re-copying
    /// a tail that keeps growing toward a full chunk. The price is an
    /// *undersized* sealed chunk per snapshot/append interleaving: heavy
    /// insert churn fragments the columns, which is the debt the background
    /// maintenance subsystem's chunk compaction
    /// ([`Catalog::publish_compacted`]) pays down.
    pub fn append_row(&mut self, name: &str, values: &[Value]) -> Result<RowId> {
        let entry = self.entry_mut(name)?;
        let shared = Arc::strong_count(&entry.table) > 1;
        let table = Arc::make_mut(&mut entry.table);
        if shared {
            table.seal_tails();
        }
        let row_id = table.append_row(values)?;
        entry.version.append_seq += 1;
        Ok(row_id)
    }

    /// Append many rows to `name` atomically (one append sub-version bump
    /// for the whole batch): every row is validated against the schema
    /// before any row is applied, so a bad row in the middle leaves the
    /// table and its version completely untouched.
    pub fn append_rows(&mut self, name: &str, rows: &[Vec<Value>]) -> Result<()> {
        let entry = self.entry_mut(name)?;
        for row in rows {
            entry.table.validate_row(row)?;
        }
        let shared = Arc::strong_count(&entry.table) > 1;
        let table = Arc::make_mut(&mut entry.table);
        if shared {
            table.seal_tails();
        }
        for row in rows {
            table
                .append_row(row)
                .expect("row validated against this schema above");
        }
        entry.version.append_seq += 1;
        Ok(())
    }

    /// Publish a *compacted* incarnation of `name`: a table holding exactly
    /// the same rows at exactly the same positions, with runs of undersized
    /// chunks merged back into full ones (built with
    /// [`crate::table::Table::compact_column`]).
    ///
    /// The swap goes through the same copy-on-write path as every other
    /// write — live snapshots keep their old `Arc` and therefore their old
    /// layout — and stamps a **fresh epoch** (returned as `(old, new)`).
    /// Unlike [`Catalog::table_mut`], though, the caller *proves* the change
    /// is layout-only (row counts are checked here; contents are the
    /// caller's contract), so derived state keyed on the old epoch is not
    /// garbage: the index layer can *reconcile* its indexes onto the new
    /// epoch instead of discarding the structure queries paid to build.
    pub fn publish_compacted(&mut self, name: &str, compacted: Table) -> Result<(u64, u64)> {
        {
            let entry = self.entry(name)?;
            if entry.table.row_count() != compacted.row_count() {
                return Err(ColumnStoreError::LengthMismatch {
                    expected: entry.table.row_count(),
                    found: compacted.row_count(),
                });
            }
            debug_assert_eq!(
                entry.table.schema(),
                compacted.schema(),
                "compaction must not change the schema"
            );
        }
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let entry = self.tables.get_mut(name).expect("checked above");
        let old_epoch = entry.version.epoch;
        entry.version = TableVersion {
            epoch,
            append_seq: 0,
        };
        entry.table = Arc::new(compacted);
        Ok((old_epoch, epoch))
    }

    /// Mutably borrow a table for *structural* changes (copy-on-write:
    /// clones shared state if a snapshot taken via [`Catalog::table_arc`] is
    /// still alive).
    ///
    /// The catalog cannot see what the caller does with the borrow, so it
    /// conservatively stamps a **fresh epoch**: layers caching derived state
    /// treat the table exactly like a drop + re-create. Pure appends should
    /// use [`Catalog::append_row`], which keeps the epoch and bumps only the
    /// append sub-version.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        if !self.tables.contains_key(name) {
            return Err(ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            });
        }
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let entry = self.tables.get_mut(name).expect("checked above");
        entry.version = TableVersion {
            epoch,
            append_seq: 0,
        };
        Ok(Arc::make_mut(&mut entry.table))
    }

    /// Re-register a table under `name` with a *persisted* epoch, bypassing
    /// the epoch counter. Used by crash recovery to rebuild a catalog whose
    /// epochs match the ones recorded in a checkpoint manifest, so derived
    /// state (and future checkpoints) stay consistent across restarts. The
    /// caller must follow up with [`Catalog::bump_next_epoch_to`] so newly
    /// minted epochs never collide with restored ones.
    pub fn restore_table(
        &mut self,
        name: impl Into<String>,
        table: Table,
        epoch: u64,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(ColumnStoreError::AlreadyExists {
                kind: "table",
                name,
            });
        }
        self.tables.insert(
            name,
            TableEntry {
                table: Arc::new(table),
                version: TableVersion {
                    epoch,
                    append_seq: 0,
                },
            },
        );
        Ok(())
    }

    /// The epoch counter: the next structural change will stamp an epoch
    /// greater than this.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Raise the epoch counter to at least `at_least`. Recovery calls this
    /// after [`Catalog::restore_table`] so fresh epochs start past every
    /// persisted one; lowering the counter is impossible.
    pub fn bump_next_epoch_to(&mut self, at_least: u64) {
        self.next_epoch = self.next_epoch.max(at_least);
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::types::Value;

    fn small_table() -> Table {
        Table::from_columns(vec![("a", Column::from_i64(vec![1, 2, 3]))]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.create_table("t", small_table()).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().row_count(), 3);
        assert!(c.table("missing").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
        assert!(c.drop_table("t").is_some());
        assert!(c.drop_table("t").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let err = c.create_table("t", small_table()).unwrap_err();
        assert!(matches!(err, ColumnStoreError::AlreadyExists { .. }));
    }

    #[test]
    fn append_row_grows_without_structural_epoch_change() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let before = c.table_version("t").unwrap();
        c.append_row("t", &[Value::Int64(4)]).unwrap();
        assert_eq!(c.table("t").unwrap().row_count(), 4);
        let after = c.table_version("t").unwrap();
        assert_eq!(after.epoch, before.epoch, "appends keep the epoch");
        assert_eq!(after.append_seq, before.append_seq + 1);
        assert!(c.append_row("missing", &[Value::Int64(1)]).is_err());
        // a failed append does not bump the sub-version
        assert!(c.append_row("t", &[Value::Utf8("x".into())]).is_err());
        assert_eq!(c.table_version("t").unwrap().append_seq, after.append_seq);
    }

    #[test]
    fn append_rows_bumps_sub_version_once_per_batch() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        c.append_rows("t", &[vec![Value::Int64(4)], vec![Value::Int64(5)]])
            .unwrap();
        assert_eq!(c.table("t").unwrap().row_count(), 5);
        assert_eq!(c.table_version("t").unwrap().append_seq, 1);
        assert!(c.append_rows("missing", &[]).is_err());
    }

    #[test]
    fn failed_batch_append_applies_nothing() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let before = c.table_version("t").unwrap();
        // valid row followed by a type-mismatched one: the whole batch must
        // be rejected without the first row leaking in
        let err = c
            .append_rows("t", &[vec![Value::Int64(4)], vec![Value::Utf8("x".into())]])
            .unwrap_err();
        assert!(matches!(err, ColumnStoreError::TypeMismatch { .. }));
        assert_eq!(c.table("t").unwrap().row_count(), 3, "nothing applied");
        assert_eq!(c.table_version("t").unwrap(), before, "version untouched");
    }

    #[test]
    fn table_mut_is_a_structural_change() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        c.append_row("t", &[Value::Int64(4)]).unwrap();
        let before = c.table_version("t").unwrap();
        assert_eq!(before.append_seq, 1);
        {
            let t = c.table_mut("t").unwrap();
            t.append_row(&[Value::Int64(5)]).unwrap();
        }
        let after = c.table_version("t").unwrap();
        assert!(after.epoch > before.epoch, "structural access = new epoch");
        assert_eq!(after.append_seq, 0, "sub-version restarts with the epoch");
        assert_eq!(c.table("t").unwrap().row_count(), 5);
        assert!(c.table_mut("missing").is_err());
    }

    #[test]
    fn epochs_distinguish_table_incarnations() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let first = c.table_epoch("t").unwrap();
        let (snapshot, epoch) = c.table_snapshot("t").unwrap();
        assert_eq!(epoch, first);
        assert_eq!(snapshot.row_count(), 3);
        // appends keep the epoch: same table, newer rows
        c.append_row("t", &[Value::Int64(4)]).unwrap();
        assert_eq!(c.table_epoch("t").unwrap(), first);
        let (snapshot, version) = c.table_snapshot_versioned("t").unwrap();
        assert_eq!(snapshot.row_count(), 4);
        assert_eq!(version.epoch, first);
        assert_eq!(version.append_seq, 1);
        // drop + re-create under the same name is a new incarnation
        c.drop_table("t");
        c.create_table("t", small_table()).unwrap();
        assert_ne!(c.table_epoch("t").unwrap(), first);
        assert!(c.table_epoch("missing").is_err());
        assert!(c.table_version("missing").is_err());
        assert!(c.table_snapshot("missing").is_err());
        assert!(c.table_snapshot_versioned("missing").is_err());
    }

    #[test]
    fn snapshots_survive_concurrent_appends() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let snapshot = c.table_arc("t").unwrap();
        assert!(c.table_arc("missing").is_err());
        // the write goes to a private copy because the snapshot is alive
        c.append_row("t", &[Value::Int64(4)]).unwrap();
        assert_eq!(snapshot.row_count(), 3, "snapshot is frozen in time");
        assert_eq!(c.table("t").unwrap().row_count(), 4);
    }

    #[test]
    fn cow_appends_share_sealed_chunks_across_snapshots() {
        let mut c = Catalog::new();
        let table = Table::from_columns(vec![(
            "a",
            Column::from_i64((0..10).collect()).with_segment_capacity(4),
        )])
        .unwrap();
        c.create_table("t", table).unwrap();
        let before = c.table_arc("t").unwrap();
        c.append_row("t", &[Value::Int64(10)]).unwrap();
        let after = c.table_arc("t").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "COW made a private copy");
        let seg_before = before.column("a").unwrap().as_i64().unwrap();
        let seg_after = after.column("a").unwrap().as_i64().unwrap();
        assert_eq!(seg_before.sealed_chunk_count(), 2);
        for (a, b) in seg_before
            .sealed_chunks()
            .iter()
            .zip(seg_after.sealed_chunks())
        {
            assert!(Arc::ptr_eq(a, b), "sealed chunks are pointer-shared");
        }
        // the write under a live snapshot sealed the shared tail [8, 9] as
        // an undersized chunk (copying nothing) and appended to a fresh tail
        assert_eq!(seg_before.tail(), &[8, 9]);
        assert_eq!(seg_after.sealed_chunk_count(), 3);
        assert_eq!(seg_after.sealed_chunk_lens(), vec![4, 4, 2]);
        assert_eq!(seg_after.tail(), &[10]);
    }

    #[test]
    fn unshared_appends_never_fragment() {
        let mut c = Catalog::new();
        let table = Table::from_columns(vec![(
            "a",
            Column::from_i64((0..10).collect()).with_segment_capacity(4),
        )])
        .unwrap();
        c.create_table("t", table).unwrap();
        // no snapshot alive: appends grow the tail in place, sealing only
        // exactly-full chunks, so the layout stays uniform
        for i in 10..20 {
            c.append_row("t", &[Value::Int64(i)]).unwrap();
        }
        let seg = c.table("t").unwrap().column("a").unwrap().as_i64().unwrap();
        assert_eq!(seg.fragmented_chunk_count(), 0);
        assert_eq!(seg.sealed_chunk_count(), 5);
    }

    #[test]
    fn publish_compacted_keeps_rows_and_snapshots_but_bumps_the_epoch() {
        let mut c = Catalog::new();
        let table = Table::from_columns(vec![(
            "a",
            Column::from_i64((0..8).collect()).with_segment_capacity(4),
        )])
        .unwrap();
        c.create_table("t", table).unwrap();
        // churn: every append under a live snapshot seals the tail early
        for i in 8..16 {
            let _snapshot = c.table_arc("t").unwrap();
            c.append_row("t", &[Value::Int64(i)]).unwrap();
        }
        let fragmented = c.table_arc("t").unwrap();
        let seg = fragmented.column("a").unwrap().as_i64().unwrap();
        assert!(seg.fragmented_chunk_count() >= 6, "churn fragments");
        let old_version = c.table_version("t").unwrap();

        // merge every undersized run and publish
        let runs = vec![(2, seg.sealed_chunk_count())];
        let compacted = fragmented.compact_column(0, &runs);
        let (old, new) = c.publish_compacted("t", compacted).unwrap();
        assert_eq!(old, old_version.epoch);
        assert!(new > old, "fresh epoch");
        assert_eq!(c.table_version("t").unwrap().append_seq, 0);

        // the live snapshot still sees the fragmented layout; the catalog's
        // current table has the merged one — with identical contents
        assert!(seg.fragmented_chunk_count() >= 6);
        let current = c.table_arc("t").unwrap();
        let compacted_seg = current.column("a").unwrap().as_i64().unwrap();
        assert!(compacted_seg.sealed_chunk_count() < seg.sealed_chunk_count());
        assert_eq!(compacted_seg.to_vec(), seg.to_vec());

        // row-count drift is rejected
        let mut wrong = Table::from_columns(vec![("a", Column::from_i64(vec![1]))]).unwrap();
        wrong.append_row(&[Value::Int64(2)]).unwrap();
        assert!(matches!(
            c.publish_compacted("t", wrong),
            Err(ColumnStoreError::LengthMismatch { .. })
        ));
        assert!(c
            .publish_compacted("missing", Table::from_columns(vec![]).unwrap())
            .is_err());
    }

    #[test]
    fn restore_preserves_epochs_and_guards_the_counter() {
        let mut c = Catalog::new();
        c.restore_table("t", small_table(), 7).unwrap();
        assert_eq!(c.table_epoch("t").unwrap(), 7);
        assert_eq!(c.table("t").unwrap().row_count(), 3);
        // duplicate restore is rejected like a duplicate create
        assert!(matches!(
            c.restore_table("t", small_table(), 8),
            Err(ColumnStoreError::AlreadyExists { .. })
        ));
        // without the bump, a fresh create could collide with epoch 7
        c.bump_next_epoch_to(9);
        assert_eq!(c.next_epoch(), 9);
        c.bump_next_epoch_to(4); // lowering is a no-op
        assert_eq!(c.next_epoch(), 9);
        c.create_table("u", small_table()).unwrap();
        assert_eq!(c.table_epoch("u").unwrap(), 10);
    }

    #[test]
    fn cow_appends_share_the_string_dictionary() {
        let mut c = Catalog::new();
        let table = Table::from_columns(vec![(
            "s",
            Column::from_strs(&["red", "green", "red", "blue"]),
        )])
        .unwrap();
        c.create_table("t", table).unwrap();
        let snapshot = c.table_arc("t").unwrap();
        let dict_before =
            std::sync::Arc::clone(snapshot.column("s").unwrap().utf8_dictionary().unwrap());
        // append a row whose string is already interned: the COW table copy
        // must share the dictionary with the live snapshot by pointer
        c.append_row("t", &[Value::Utf8("green".into())]).unwrap();
        let after = c.table_arc("t").unwrap();
        assert!(std::sync::Arc::ptr_eq(
            &dict_before,
            after.column("s").unwrap().utf8_dictionary().unwrap()
        ));
        // a new string deep-copies the dictionary once, leaving the snapshot's
        // dictionary untouched
        c.append_row("t", &[Value::Utf8("teal".into())]).unwrap();
        let grown = c.table_arc("t").unwrap();
        assert!(!std::sync::Arc::ptr_eq(
            &dict_before,
            grown.column("s").unwrap().utf8_dictionary().unwrap()
        ));
        assert_eq!(dict_before.len(), 3, "snapshot dictionary frozen");
        assert_eq!(
            grown.column("s").unwrap().value_at(5).unwrap(),
            Value::Utf8("teal".into())
        );
    }
}
