//! A minimal catalog: named tables living in one in-memory database.

use crate::error::{ColumnStoreError, Result};
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A catalog of named tables.
///
/// The catalog is deliberately simple: the adaptive indexing experiments work
/// against one or a few tables, but the kernel layer (`aidx-core`) needs a
/// stable place to resolve table names and enumerate columns when deciding
/// which adaptive indexes to maintain.
///
/// Tables are stored behind [`Arc`] so that a reader can take a cheap
/// point-in-time snapshot ([`Catalog::table_arc`]) and keep streaming rows
/// out of it while writers move the catalog forward: [`Catalog::table_mut`]
/// is copy-on-write (it clones the table only when a snapshot is still
/// alive), which is exactly the isolation level a streaming result iterator
/// needs.
///
/// Every table registration is stamped with a catalog-unique *epoch*
/// ([`Catalog::table_epoch`]). Appending rows keeps the epoch (contents are
/// an append-only extension of the same table), while dropping and
/// re-creating a table under the same name yields a fresh epoch — so a
/// layer that caches derived state (like the kernel's adaptive indexes) can
/// tell "the same table, newer rows" apart from "a different table that
/// happens to share the name and size".
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableEntry>,
    next_epoch: u64,
}

#[derive(Debug, Clone)]
struct TableEntry {
    table: Arc<Table>,
    epoch: u64,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under `name`. Fails if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(ColumnStoreError::AlreadyExists {
                kind: "table",
                name,
            });
        }
        self.next_epoch += 1;
        self.tables.insert(
            name,
            TableEntry {
                table: Arc::new(table),
                epoch: self.next_epoch,
            },
        );
        Ok(())
    }

    /// Drop a table; returns it if it existed.
    pub fn drop_table(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name).map(|entry| entry.table)
    }

    fn entry(&self, name: &str) -> Result<&TableEntry> {
        self.tables
            .get(name)
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        Ok(self.entry(name)?.table.as_ref())
    }

    /// A point-in-time snapshot of a table, cheap to clone and safe to keep
    /// reading after the catalog has moved on.
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>> {
        Ok(Arc::clone(&self.entry(name)?.table))
    }

    /// A snapshot plus the epoch of the table's current incarnation.
    pub fn table_snapshot(&self, name: &str) -> Result<(Arc<Table>, u64)> {
        let entry = self.entry(name)?;
        Ok((Arc::clone(&entry.table), entry.epoch))
    }

    /// The epoch of the table's current incarnation (assigned at
    /// registration; stable across appends, fresh after drop + re-create).
    pub fn table_epoch(&self, name: &str) -> Result<u64> {
        Ok(self.entry(name)?.epoch)
    }

    /// Mutably borrow a table (copy-on-write: clones the table if a snapshot
    /// taken via [`Catalog::table_arc`] is still alive).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .map(|entry| Arc::make_mut(&mut entry.table))
            .ok_or_else(|| ColumnStoreError::NotFound {
                kind: "table",
                name: name.to_owned(),
            })
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn small_table() -> Table {
        Table::from_columns(vec![("a", Column::from_i64(vec![1, 2, 3]))]).unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.create_table("t", small_table()).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().row_count(), 3);
        assert!(c.table("missing").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
        assert!(c.drop_table("t").is_some());
        assert!(c.drop_table("t").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let err = c.create_table("t", small_table()).unwrap_err();
        assert!(matches!(err, ColumnStoreError::AlreadyExists { .. }));
    }

    #[test]
    fn table_mut_allows_appends() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        {
            let t = c.table_mut("t").unwrap();
            t.append_row(&[crate::types::Value::Int64(4)]).unwrap();
        }
        assert_eq!(c.table("t").unwrap().row_count(), 4);
        assert!(c.table_mut("missing").is_err());
    }

    #[test]
    fn epochs_distinguish_table_incarnations() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let first = c.table_epoch("t").unwrap();
        let (snapshot, epoch) = c.table_snapshot("t").unwrap();
        assert_eq!(epoch, first);
        assert_eq!(snapshot.row_count(), 3);
        // appends keep the epoch: same table, newer rows
        c.table_mut("t")
            .unwrap()
            .append_row(&[crate::types::Value::Int64(4)])
            .unwrap();
        assert_eq!(c.table_epoch("t").unwrap(), first);
        // drop + re-create under the same name is a new incarnation
        c.drop_table("t");
        c.create_table("t", small_table()).unwrap();
        assert_ne!(c.table_epoch("t").unwrap(), first);
        assert!(c.table_epoch("missing").is_err());
        assert!(c.table_snapshot("missing").is_err());
    }

    #[test]
    fn snapshots_survive_concurrent_appends() {
        let mut c = Catalog::new();
        c.create_table("t", small_table()).unwrap();
        let snapshot = c.table_arc("t").unwrap();
        assert!(c.table_arc("missing").is_err());
        // the write goes to a private copy because the snapshot is alive
        c.table_mut("t")
            .unwrap()
            .append_row(&[crate::types::Value::Int64(4)])
            .unwrap();
        assert_eq!(snapshot.row_count(), 3, "snapshot is frozen in time");
        assert_eq!(c.table("t").unwrap().row_count(), 4);
    }
}
