//! The final index: the sorted structure that accumulates every merged range.
//!
//! Conceptually this is the "final partition" of a partitioned B-tree: once a
//! key range has been merged out of the runs it lives here and is queried at
//! index cost. The implementation keeps one *sorted segment per merged value
//! interval* in a `BTreeMap` keyed by the interval's lower bound; overlapping
//! intervals are coalesced on insert. This gives:
//!
//! * insertion cost proportional to the new batch plus whatever existing
//!   segments it overlaps (not to the total merged data),
//! * lookup cost of a couple of binary searches per overlapping segment plus
//!   the output size,
//! * results that come out in globally sorted key order, because segments are
//!   disjoint and internally sorted.

use aidx_columnstore::types::{Key, RowId};
use std::collections::BTreeMap;

/// One merged value interval and its sorted pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    /// Exclusive upper bound of the covered value interval.
    high: Key,
    keys: Vec<Key>,
    rowids: Vec<RowId>,
}

/// A collection of disjoint, internally sorted value-range segments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedRangeIndex {
    /// Segments keyed by the inclusive lower bound of their covered interval.
    segments: BTreeMap<Key, Segment>,
    len: usize,
}

impl SortedRangeIndex {
    /// Create an empty final index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been merged yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disjoint segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Insert a batch of pairs whose keys all lie in the covered interval
    /// `[low, high)`. The batch need not be sorted; it must not contain keys
    /// that are already stored (the adaptive-merging protocol guarantees this:
    /// a covered interval is drained from every run the first time it is
    /// queried).
    pub fn insert_range(&mut self, low: Key, high: Key, mut pairs: Vec<(Key, RowId)>) {
        if high <= low {
            return;
        }
        pairs.sort_unstable();
        self.len += pairs.len();

        // Collect existing segments overlapping (or touching) [low, high).
        let overlapping: Vec<Key> = self
            .segments
            .range(..=high)
            .filter(|(&seg_low, segment)| seg_low <= high && segment.high >= low)
            .map(|(&seg_low, _)| seg_low)
            .collect();

        let mut new_low = low;
        let mut new_high = high;
        let mut merged_keys: Vec<Key> = pairs.iter().map(|&(k, _)| k).collect();
        let mut merged_rowids: Vec<RowId> = pairs.iter().map(|&(_, r)| r).collect();
        for seg_low in overlapping {
            let segment = self.segments.remove(&seg_low).expect("listed above");
            new_low = new_low.min(seg_low);
            new_high = new_high.max(segment.high);
            let (keys, rowids) =
                merge_sorted(&merged_keys, &merged_rowids, &segment.keys, &segment.rowids);
            merged_keys = keys;
            merged_rowids = rowids;
        }
        self.segments.insert(
            new_low,
            Segment {
                high: new_high,
                keys: merged_keys,
                rowids: merged_rowids,
            },
        );
    }

    /// Whether the interval `[low, high)` is fully covered by merged
    /// segments (i.e. a query over it needs no run access at all).
    pub fn covers(&self, low: Key, high: Key) -> bool {
        if high <= low {
            return true;
        }
        let mut cursor = low;
        for (&seg_low, segment) in self.segments.range(..high) {
            if segment.high < cursor || seg_low > cursor {
                continue;
            }
            cursor = cursor.max(segment.high);
            if cursor >= high {
                return true;
            }
        }
        cursor >= high
    }

    /// Collect every stored pair with key in `[low, high)`, in sorted key
    /// order.
    pub fn query_range(&self, low: Key, high: Key) -> (Vec<Key>, Vec<RowId>) {
        let mut keys = Vec::new();
        let mut rowids = Vec::new();
        if high <= low {
            return (keys, rowids);
        }
        for (_, segment) in self.segments.range(..high) {
            if segment.keys.is_empty() {
                continue;
            }
            let begin = segment.keys.partition_point(|&k| k < low);
            let end = segment.keys.partition_point(|&k| k < high);
            if begin < end {
                keys.extend_from_slice(&segment.keys[begin..end]);
                rowids.extend_from_slice(&segment.rowids[begin..end]);
            }
        }
        (keys, rowids)
    }

    /// Count the stored pairs with key in `[low, high)` without copying them.
    pub fn count_range(&self, low: Key, high: Key) -> usize {
        if high <= low {
            return 0;
        }
        let mut count = 0;
        for (_, segment) in self.segments.range(..high) {
            let begin = segment.keys.partition_point(|&k| k < low);
            let end = segment.keys.partition_point(|&k| k < high);
            count += end - begin;
        }
        count
    }

    /// Structural invariants: segments are disjoint, ordered, internally
    /// sorted, and the pair count adds up.
    pub fn check_invariants(&self) -> bool {
        let mut counted = 0usize;
        let mut previous_high = Key::MIN;
        for (&seg_low, segment) in &self.segments {
            if seg_low >= segment.high && !segment.keys.is_empty() {
                return false;
            }
            if seg_low < previous_high {
                return false;
            }
            if segment.keys.len() != segment.rowids.len() {
                return false;
            }
            if !segment.keys.windows(2).all(|w| w[0] <= w[1]) {
                return false;
            }
            if segment
                .keys
                .iter()
                .any(|&k| k < seg_low || k >= segment.high)
            {
                return false;
            }
            counted += segment.keys.len();
            previous_high = segment.high;
        }
        counted == self.len
    }
}

fn merge_sorted(
    a_keys: &[Key],
    a_rowids: &[RowId],
    b_keys: &[Key],
    b_rowids: &[RowId],
) -> (Vec<Key>, Vec<RowId>) {
    let mut keys = Vec::with_capacity(a_keys.len() + b_keys.len());
    let mut rowids = Vec::with_capacity(a_rowids.len() + b_rowids.len());
    let (mut i, mut j) = (0, 0);
    while i < a_keys.len() && j < b_keys.len() {
        if a_keys[i] <= b_keys[j] {
            keys.push(a_keys[i]);
            rowids.push(a_rowids[i]);
            i += 1;
        } else {
            keys.push(b_keys[j]);
            rowids.push(b_rowids[j]);
            j += 1;
        }
    }
    keys.extend_from_slice(&a_keys[i..]);
    rowids.extend_from_slice(&a_rowids[i..]);
    keys.extend_from_slice(&b_keys[j..]);
    rowids.extend_from_slice(&b_rowids[j..]);
    (keys, rowids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(range: std::ops::Range<Key>) -> Vec<(Key, RowId)> {
        range.map(|k| (k, k as RowId)).collect()
    }

    #[test]
    fn insert_and_query_single_segment() {
        let mut index = SortedRangeIndex::new();
        assert!(index.is_empty());
        index.insert_range(10, 20, pairs(10..20));
        assert_eq!(index.len(), 10);
        assert_eq!(index.segment_count(), 1);
        let (keys, rowids) = index.query_range(12, 15);
        assert_eq!(keys, vec![12, 13, 14]);
        assert_eq!(rowids, vec![12, 13, 14]);
        assert_eq!(index.count_range(12, 15), 3);
        assert!(index.check_invariants());
    }

    #[test]
    fn disjoint_inserts_stay_separate_overlapping_coalesce() {
        let mut index = SortedRangeIndex::new();
        index.insert_range(0, 10, pairs(0..10));
        index.insert_range(20, 30, pairs(20..30));
        assert_eq!(index.segment_count(), 2);
        index.insert_range(5, 25, pairs(10..20));
        assert_eq!(index.segment_count(), 1, "overlapping ranges coalesce");
        assert_eq!(index.len(), 30);
        let (keys, _) = index.query_range(0, 30);
        assert_eq!(keys, (0..30).collect::<Vec<Key>>());
        assert!(index.check_invariants());
    }

    #[test]
    fn covers_tracks_the_merged_intervals() {
        let mut index = SortedRangeIndex::new();
        assert!(index.covers(5, 5), "empty interval is trivially covered");
        assert!(!index.covers(0, 1));
        index.insert_range(10, 20, pairs(10..20));
        index.insert_range(20, 30, pairs(20..30));
        assert!(index.covers(12, 28));
        assert!(index.covers(10, 30));
        assert!(!index.covers(5, 15));
        assert!(!index.covers(25, 35));
    }

    #[test]
    fn unsorted_batches_are_sorted_on_insert() {
        let mut index = SortedRangeIndex::new();
        index.insert_range(0, 100, vec![(50, 0), (10, 1), (90, 2)]);
        let (keys, _) = index.query_range(0, 100);
        assert_eq!(keys, vec![10, 50, 90]);
    }

    #[test]
    fn query_outside_and_degenerate() {
        let mut index = SortedRangeIndex::new();
        index.insert_range(10, 20, pairs(10..20));
        assert!(index.query_range(30, 40).0.is_empty());
        assert!(index.query_range(20, 10).0.is_empty());
        assert_eq!(index.count_range(20, 10), 0);
        index.insert_range(5, 5, pairs(0..0));
        assert_eq!(index.len(), 10, "empty interval insert is a no-op");
    }

    #[test]
    fn many_random_interval_inserts_keep_invariants() {
        let mut index = SortedRangeIndex::new();
        let mut inserted = 0usize;
        let mut state = 99u64;
        let mut covered: Vec<(Key, Key)> = Vec::new();
        for _ in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let low = ((state >> 33) % 10_000) as Key;
            let high = low + 1 + ((state >> 20) % 500) as Key;
            // only insert keys not covered before (mirrors the merging protocol)
            let batch: Vec<(Key, RowId)> = (low..high)
                .filter(|&k| !covered.iter().any(|&(l, h)| k >= l && k < h))
                .map(|k| (k, k as RowId))
                .collect();
            inserted += batch.len();
            index.insert_range(low, high, batch);
            covered.push((low, high));
            assert!(index.check_invariants());
        }
        assert_eq!(index.len(), inserted);
        // everything inserted comes back exactly once
        let (keys, _) = index.query_range(Key::MIN, Key::MAX);
        assert_eq!(keys.len(), inserted);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
