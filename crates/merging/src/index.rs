//! The adaptive merge index.

use crate::final_index::SortedRangeIndex;
use crate::run::SortedRun;
use crate::stats::MergeStats;
use aidx_columnstore::column::Column;
use aidx_columnstore::position::PositionList;
use aidx_columnstore::types::{Key, RowId};

/// Default run size (number of tuples per initial sorted run) when the caller
/// does not specify one. Chosen so that a run comfortably fits the L2 cache
/// for 12-byte pairs, mirroring the "workload fits memory, runs fit cache"
/// setup of the main-memory adaptive merging experiments.
pub const DEFAULT_RUN_SIZE: usize = 1 << 16;

/// The qualifying tuples of one range query, in sorted key order.
///
/// The result owns its data: depending on how much of the requested range had
/// already been merged, the tuples come partly from the final index and
/// partly from the just-merged runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeRangeResult {
    keys: Vec<Key>,
    rowids: Vec<RowId>,
}

impl MergeRangeResult {
    /// The qualifying keys, in ascending order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Row ids parallel to [`Self::keys`].
    pub fn rowids(&self) -> &[RowId] {
        &self.rowids
    }

    /// Row ids as a sorted position list for late materialization.
    pub fn positions(&self) -> PositionList {
        PositionList::from_vec(self.rowids.clone())
    }

    /// Number of qualifying tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no tuple qualifies.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// An adaptive merging index over one key column.
#[derive(Debug, Clone)]
pub struct AdaptiveMergeIndex {
    /// Initial sorted runs; shrink as ranges are merged out of them.
    runs: Vec<SortedRun>,
    /// The final index: every tuple a query has asked for so far.
    final_index: SortedRangeIndex,
    run_size: usize,
    total_len: usize,
    stats: MergeStats,
}

impl AdaptiveMergeIndex {
    /// Build the index from a dense key slice. Run generation (splitting into
    /// runs of `run_size` and sorting each) happens immediately and is
    /// charged to the statistics — it is the initialization cost the first
    /// query pays.
    pub fn from_keys(keys: &[Key], run_size: usize) -> Self {
        Self::from_key_iter(keys.iter().copied(), run_size)
    }

    /// Build by streaming keys: each run buffer fills directly from the
    /// source iterator and is sorted in place, so a multi-chunk segment never
    /// has to be materialized contiguously first.
    pub fn from_key_iter(keys: impl ExactSizeIterator<Item = Key>, run_size: usize) -> Self {
        let run_size = run_size.max(1);
        let total_len = keys.len();
        let mut stats = MergeStats::new();
        let mut runs = Vec::with_capacity(total_len.div_ceil(run_size));
        let mut pairs: Vec<(Key, RowId)> = Vec::with_capacity(run_size.min(total_len));
        for (i, k) in keys.enumerate() {
            pairs.push((k, i as RowId));
            if pairs.len() == run_size {
                stats.record_sort(pairs.len());
                runs.push(SortedRun::from_pairs(std::mem::take(&mut pairs)));
            }
        }
        if !pairs.is_empty() {
            stats.record_sort(pairs.len());
            runs.push(SortedRun::from_pairs(pairs));
        }
        AdaptiveMergeIndex {
            runs,
            final_index: SortedRangeIndex::new(),
            run_size,
            total_len,
            stats,
        }
    }

    /// Build from an `Int64` base column with the default run size.
    pub fn from_column(column: &Column) -> Self {
        match column.as_i64() {
            Some(c) => Self::from_keys(&c.to_contiguous(), DEFAULT_RUN_SIZE),
            None => Self::from_keys(&[], DEFAULT_RUN_SIZE),
        }
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// True when the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// The configured run size.
    pub fn run_size(&self) -> usize {
        self.run_size
    }

    /// Number of non-empty runs remaining.
    pub fn active_run_count(&self) -> usize {
        self.runs.iter().filter(|r| !r.is_empty()).count()
    }

    /// Number of tuples already merged into the final index.
    pub fn merged_len(&self) -> usize {
        self.final_index.len()
    }

    /// Fraction of tuples that have reached the final index (1.0 = fully
    /// converged).
    pub fn merge_progress(&self) -> f64 {
        if self.total_len == 0 {
            1.0
        } else {
            self.merged_len() as f64 / self.total_len as f64
        }
    }

    /// True once every tuple lives in the final index: from now on queries
    /// are pure index lookups with zero reorganization.
    pub fn is_converged(&self) -> bool {
        self.merged_len() == self.total_len
    }

    /// Accumulated instrumentation.
    pub fn stats(&self) -> &MergeStats {
        &self.stats
    }

    /// Answer the half-open range query `[low, high)` adaptively: merge the
    /// qualifying tuples out of all runs into the final index, then answer
    /// from the final index.
    pub fn query_range(&mut self, low: Key, high: Key) -> MergeRangeResult {
        self.stats.record_query();
        if low >= high || self.total_len == 0 {
            return MergeRangeResult::default();
        }

        // 1. If the requested interval has been merged before, the runs hold
        //    nothing for it (fast path: the overhead has disappeared).
        if !self.final_index.covers(low, high) {
            // 2. Extract the requested range from every run that may contain it.
            let mut extracted: Vec<(Key, RowId)> = Vec::new();
            for run in &mut self.runs {
                if run.is_empty() || !run.overlaps(low, high) {
                    self.stats.record_probe(true);
                    continue;
                }
                self.stats.record_probe(false);
                extracted.extend(run.extract_range(low, high));
            }
            // 3. Merge the extracted tuples into the final index (recording
            //    the covered interval even when nothing qualified, so future
            //    queries skip the runs entirely).
            self.stats.record_merge(extracted.len());
            self.final_index.insert_range(low, high, extracted);
        }

        // 4. Answer from the final index.
        let (keys, rowids) = self.final_index.query_range(low, high);
        self.stats.record_scan(keys.len());
        MergeRangeResult { keys, rowids }
    }

    /// Count the qualifying tuples of `[low, high)`.
    pub fn count_range(&mut self, low: Key, high: Key) -> usize {
        self.query_range(low, high).len()
    }

    /// The qualifying base-column positions for `[low, high)`.
    pub fn positions_range(&mut self, low: Key, high: Key) -> PositionList {
        self.query_range(low, high).positions()
    }

    /// Verify structural invariants: the final index and runs are internally
    /// consistent and no tuple is lost or duplicated.
    pub fn verify_integrity(&self) -> bool {
        let runs_ok = self.runs.iter().all(SortedRun::check_invariants);
        let accounted: usize =
            self.final_index.len() + self.runs.iter().map(SortedRun::len).sum::<usize>();
        runs_ok && self.final_index.check_invariants() && accounted == self.total_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(data: &[Key], low: Key, high: Key) -> Vec<Key> {
        let mut v: Vec<Key> = data
            .iter()
            .copied()
            .filter(|&x| x >= low && x < high)
            .collect();
        v.sort_unstable();
        v
    }

    fn test_data(n: usize) -> Vec<Key> {
        (0..n as Key).map(|i| (i * 75431) % n as Key).collect()
    }

    #[test]
    fn run_generation_splits_and_sorts() {
        let data = test_data(1000);
        let idx = AdaptiveMergeIndex::from_keys(&data, 128);
        assert_eq!(idx.len(), 1000);
        assert_eq!(idx.active_run_count(), 8); // ceil(1000/128)
        assert_eq!(idx.merged_len(), 0);
        assert!(!idx.is_converged());
        assert_eq!(idx.run_size(), 128);
        assert!(idx.stats().elements_sorted == 1000);
        assert!(idx.verify_integrity());
    }

    #[test]
    fn first_query_merges_requested_range() {
        let data = vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3];
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 4);
        let result = idx.query_range(5, 15);
        assert_eq!(result.keys(), &[7, 9, 12, 13]);
        assert!(!result.is_empty());
        // row ids point back at the base data
        for (&k, &r) in result.keys().iter().zip(result.rowids()) {
            assert_eq!(data[r as usize], k);
        }
        assert_eq!(idx.merged_len(), 4);
        assert!(idx.verify_integrity());
    }

    #[test]
    fn answers_match_reference_over_many_queries() {
        let data = test_data(5000);
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 512);
        for q in 0..100 {
            let low = (q * 131) % 4500;
            let high = low + 200;
            let got = idx.query_range(low, high).keys().to_vec();
            assert_eq!(got, reference(&data, low, high));
            assert!(idx.verify_integrity());
        }
    }

    #[test]
    fn repeated_range_skips_the_runs_entirely() {
        let data = test_data(2000);
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 256);
        let _ = idx.query_range(100, 500);
        let merged_after_first = idx.stats().elements_merged;
        let probes_after_first = idx.stats().run_probes;
        let got = idx.query_range(100, 500).keys().to_vec();
        assert_eq!(got, reference(&data, 100, 500));
        assert_eq!(idx.stats().elements_merged, merged_after_first);
        assert_eq!(
            idx.stats().run_probes,
            probes_after_first,
            "a covered range needs no run probes at all"
        );
        // and a strict sub-range is covered too
        let _ = idx.query_range(200, 300);
        assert_eq!(idx.stats().run_probes, probes_after_first);
    }

    #[test]
    fn full_domain_query_converges_immediately() {
        let data = test_data(1000);
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 100);
        let result = idx.query_range(Key::MIN, Key::MAX);
        assert_eq!(result.len(), 1000);
        assert!(idx.is_converged());
        assert_eq!(idx.active_run_count(), 0);
        assert!((idx.merge_progress() - 1.0).abs() < 1e-12);
        // subsequent queries never touch runs again
        let _ = idx.query_range(10, 20);
        assert!(idx.verify_integrity());
    }

    #[test]
    fn convergence_after_covering_workload() {
        let data = test_data(4096);
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 512);
        let mut low = 0;
        while low < 4096 {
            let _ = idx.query_range(low, low + 256);
            low += 256;
        }
        assert!(idx.is_converged());
        assert_eq!(idx.merged_len(), 4096);
        assert!(idx.verify_integrity());
    }

    #[test]
    fn empty_and_degenerate_queries() {
        let mut idx = AdaptiveMergeIndex::from_keys(&[], 64);
        assert!(idx.is_empty());
        assert!(idx.query_range(0, 10).is_empty());
        assert!(idx.is_converged(), "empty index is trivially converged");

        let data = vec![5, 1, 9];
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 2);
        assert_eq!(idx.count_range(9, 5), 0);
        assert_eq!(idx.count_range(0, 100), 3);
        let p = idx.positions_range(0, 100);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn duplicates_survive_merging() {
        let data = vec![5, 5, 5, 1, 9, 5];
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 2);
        assert_eq!(idx.count_range(5, 6), 4);
        assert_eq!(idx.count_range(0, 100), 6);
        assert!(idx.verify_integrity());
    }

    #[test]
    fn from_column_dispatch() {
        let c = Column::from_i64(vec![3, 1, 2]);
        let mut idx = AdaptiveMergeIndex::from_column(&c);
        assert_eq!(idx.count_range(2, 4), 2);
        let f = Column::from_f64(vec![1.0]);
        let idx2 = AdaptiveMergeIndex::from_column(&f);
        assert!(idx2.is_empty());
    }

    #[test]
    fn run_size_one_degenerates_to_presorted_runs() {
        let data = vec![4, 3, 2, 1];
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 1);
        assert_eq!(idx.active_run_count(), 4);
        let r = idx.query_range(2, 4).keys().to_vec();
        assert_eq!(r, vec![2, 3]);
        assert!(idx.verify_integrity());
    }

    #[test]
    fn stats_reflect_initialization_and_merging() {
        let data = test_data(1000);
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 100);
        let init_effort = idx.stats().total_effort();
        assert!(init_effort > 0, "run generation is charged up front");
        let _ = idx.query_range(0, 500);
        assert!(idx.stats().elements_merged >= 490);
        assert!(idx.stats().total_effort() > init_effort);
        assert_eq!(idx.stats().queries, 1);
    }

    #[test]
    fn overlapping_queries_never_lose_or_duplicate_tuples() {
        let data = test_data(3000);
        let mut idx = AdaptiveMergeIndex::from_keys(&data, 300);
        for &(low, high) in &[(100, 900), (500, 1500), (0, 400), (1400, 2999), (0, 3000)] {
            let got = idx.query_range(low, high).keys().to_vec();
            assert_eq!(got, reference(&data, low, high), "[{low},{high})");
            assert!(idx.verify_integrity());
        }
        assert!(idx.is_converged());
    }
}
