//! Sorted runs: the initial partitions of adaptive merging.
//!
//! A run behaves like one leaf level of a partitioned B-tree: the pairs are
//! sorted once (run generation) and later queries *extract* key ranges out of
//! it. Extraction must not pay for the rest of the run — in a B-tree the
//! removed range simply stops being referenced — so the run keeps its sorted
//! arrays immutable and tracks the still-live regions as a list of segments.
//! Extracting a range costs binary searches plus the size of the extracted
//! range, never a shift of the remaining data.

use aidx_columnstore::types::{Key, RowId};

/// A sorted run of `(key, row id)` pairs with segment-tracked liveness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedRun {
    keys: Vec<Key>,
    rowids: Vec<RowId>,
    /// Still-live index ranges `[start, end)` into `keys`/`rowids`, in
    /// ascending (and therefore key-sorted) order, non-overlapping.
    live: Vec<(usize, usize)>,
    /// Number of live pairs (sum of segment lengths).
    live_len: usize,
}

impl SortedRun {
    /// Build a run by sorting a vector of pairs.
    pub fn from_pairs(mut pairs: Vec<(Key, RowId)>) -> Self {
        pairs.sort_unstable();
        let keys: Vec<Key> = pairs.iter().map(|&(k, _)| k).collect();
        let rowids: Vec<RowId> = pairs.iter().map(|&(_, r)| r).collect();
        let live = if keys.is_empty() {
            Vec::new()
        } else {
            vec![(0, keys.len())]
        };
        let live_len = keys.len();
        SortedRun {
            keys,
            rowids,
            live,
            live_len,
        }
    }

    /// Number of pairs still live in the run.
    pub fn len(&self) -> usize {
        self.live_len
    }

    /// True when the run has been fully consumed.
    pub fn is_empty(&self) -> bool {
        self.live_len == 0
    }

    /// Number of live segments (grows by at most one per extraction).
    pub fn segment_count(&self) -> usize {
        self.live.len()
    }

    /// The still-live keys, in sorted order (materializes a copy; intended
    /// for tests and diagnostics, not the hot path).
    pub fn keys(&self) -> Vec<Key> {
        let mut out = Vec::with_capacity(self.live_len);
        for &(s, e) in &self.live {
            out.extend_from_slice(&self.keys[s..e]);
        }
        out
    }

    /// The row ids parallel to [`Self::keys`].
    pub fn rowids(&self) -> Vec<RowId> {
        let mut out = Vec::with_capacity(self.live_len);
        for &(s, e) in &self.live {
            out.extend_from_slice(&self.rowids[s..e]);
        }
        out
    }

    /// Smallest key still in the run.
    pub fn min_key(&self) -> Option<Key> {
        self.live.first().map(|&(s, _)| self.keys[s])
    }

    /// Largest key still in the run.
    pub fn max_key(&self) -> Option<Key> {
        self.live.last().map(|&(_, e)| self.keys[e - 1])
    }

    /// Whether the run may contain keys in `[low, high)` (fence-key test).
    pub fn overlaps(&self, low: Key, high: Key) -> bool {
        match (self.min_key(), self.max_key()) {
            (Some(min), Some(max)) => min < high && max >= low,
            _ => false,
        }
    }

    /// Position of the first key `>= bound` within the *backing array* slice
    /// `[start, end)`.
    fn lower_bound_in(&self, start: usize, end: usize, bound: Key) -> usize {
        start + self.keys[start..end].partition_point(|&k| k < bound)
    }

    /// Number of live keys inside `[low, high)` without extracting them.
    pub fn count_range(&self, low: Key, high: Key) -> usize {
        let mut count = 0;
        for &(s, e) in &self.live {
            if self.keys[s] >= high || self.keys[e - 1] < low {
                continue;
            }
            let begin = self.lower_bound_in(s, e, low);
            let end = self.lower_bound_in(s, e, high);
            count += end - begin;
        }
        count
    }

    /// Read-only copy of the live pairs with key in `[low, high)`.
    pub fn peek_range(&self, low: Key, high: Key) -> Vec<(Key, RowId)> {
        let mut out = Vec::new();
        for &(s, e) in &self.live {
            if self.keys[s] >= high || self.keys[e - 1] < low {
                continue;
            }
            let begin = self.lower_bound_in(s, e, low);
            let end = self.lower_bound_in(s, e, high);
            for i in begin..end {
                out.push((self.keys[i], self.rowids[i]));
            }
        }
        out
    }

    /// Remove and return every live pair with key in `[low, high)`, in sorted
    /// key order. Cost: a binary search per live segment plus the size of the
    /// extracted range; the remaining data is never moved.
    pub fn extract_range(&mut self, low: Key, high: Key) -> Vec<(Key, RowId)> {
        if self.live_len == 0 || low >= high {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut new_live = Vec::with_capacity(self.live.len() + 1);
        for &(s, e) in &self.live {
            if self.keys[s] >= high || self.keys[e - 1] < low {
                new_live.push((s, e));
                continue;
            }
            let begin = self.lower_bound_in(s, e, low);
            let end = self.lower_bound_in(s, e, high);
            if begin == end {
                new_live.push((s, e));
                continue;
            }
            for i in begin..end {
                out.push((self.keys[i], self.rowids[i]));
            }
            if s < begin {
                new_live.push((s, begin));
            }
            if end < e {
                new_live.push((end, e));
            }
        }
        self.live = new_live;
        self.live_len -= out.len();
        out
    }

    /// Check that the backing arrays are parallel and sorted and that the
    /// live segments are ordered, non-overlapping and within bounds.
    pub fn check_invariants(&self) -> bool {
        if self.keys.len() != self.rowids.len() {
            return false;
        }
        if !self.keys.windows(2).all(|w| w[0] <= w[1]) {
            return false;
        }
        let mut previous_end = 0usize;
        let mut counted = 0usize;
        for &(s, e) in &self.live {
            if s >= e || s < previous_end || e > self.keys.len() {
                return false;
            }
            counted += e - s;
            previous_end = e;
        }
        counted == self.live_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_from(values: &[Key]) -> SortedRun {
        SortedRun::from_pairs(
            values
                .iter()
                .copied()
                .enumerate()
                .map(|(i, k)| (k, i as RowId))
                .collect(),
        )
    }

    #[test]
    fn from_pairs_sorts() {
        let r = run_from(&[9, 1, 5, 3]);
        assert_eq!(r.keys(), vec![1, 3, 5, 9]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.segment_count(), 1);
        assert!(r.check_invariants());
        assert_eq!(r.min_key(), Some(1));
        assert_eq!(r.max_key(), Some(9));
    }

    #[test]
    fn overlaps_uses_fence_keys() {
        let r = run_from(&[10, 20, 30]);
        assert!(r.overlaps(15, 25));
        assert!(r.overlaps(30, 31));
        assert!(!r.overlaps(31, 40));
        assert!(!r.overlaps(0, 10));
        assert!(!SortedRun::default().overlaps(0, 100));
    }

    #[test]
    fn extract_range_removes_and_returns_sorted() {
        let mut r = run_from(&[9, 1, 5, 3, 7]);
        let extracted = r.extract_range(3, 8);
        assert_eq!(
            extracted.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert_eq!(r.keys(), vec![1, 9]);
        assert_eq!(r.segment_count(), 2, "the middle extraction splits the run");
        assert!(r.check_invariants());
        // row ids still identify the original positions
        for &(k, rid) in &extracted {
            assert_eq!([9, 1, 5, 3, 7][rid as usize], k);
        }
        // extracting again yields nothing
        assert!(r.extract_range(3, 8).is_empty());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn extract_everything_empties_the_run() {
        let mut r = run_from(&[4, 2, 6]);
        let e = r.extract_range(Key::MIN, Key::MAX);
        assert_eq!(e.len(), 3);
        assert!(r.is_empty());
        assert_eq!(r.min_key(), None);
        assert_eq!(r.segment_count(), 0);
        assert!(r.check_invariants());
    }

    #[test]
    fn repeated_extractions_fragment_then_drain() {
        let mut r = run_from(&(0..100).rev().collect::<Vec<Key>>());
        let mut total = 0;
        for start in [40, 10, 70, 0, 90, 20, 50, 30, 60, 80] {
            total += r.extract_range(start, start + 10).len();
            assert!(r.check_invariants());
        }
        assert_eq!(total, 100);
        assert!(r.is_empty());
    }

    #[test]
    fn count_and_peek() {
        let r = run_from(&[1, 3, 5, 7, 9]);
        assert_eq!(r.count_range(3, 8), 3);
        assert_eq!(r.count_range(10, 20), 0);
        let peeked = r.peek_range(3, 8);
        assert_eq!(
            peeked.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert_eq!(r.len(), 5, "peek does not remove");
    }

    #[test]
    fn count_respects_fragmentation() {
        let mut r = run_from(&(0..50).collect::<Vec<Key>>());
        let _ = r.extract_range(10, 20);
        assert_eq!(r.count_range(0, 50), 40);
        assert_eq!(r.count_range(5, 25), 10);
        assert_eq!(r.peek_range(5, 25).len(), 10);
    }

    #[test]
    fn duplicate_keys_extract_together() {
        let mut r = run_from(&[5, 5, 5, 1, 9]);
        let e = r.extract_range(5, 6);
        assert_eq!(e.len(), 3);
        assert_eq!(r.keys(), vec![1, 9]);
    }

    #[test]
    fn empty_run_edge_cases() {
        let mut r = SortedRun::default();
        assert!(r.is_empty());
        assert!(r.extract_range(0, 10).is_empty());
        assert_eq!(r.count_range(0, 10), 0);
        assert!(r.check_invariants());
        let mut r = run_from(&[5]);
        assert!(r.extract_range(6, 10).is_empty());
        assert_eq!(r.extract_range(5, 6).len(), 1);
    }
}
