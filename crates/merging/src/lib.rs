//! # aidx-merging
//!
//! Adaptive merging (Graefe & Kuno — SMDB 2010, EDBT 2010): the second family
//! of adaptive indexing techniques the EDBT 2012 tutorial covers, designed as
//! a more *active* counterpart to database cracking.
//!
//! Where cracking does the minimum possible work per query (two partition
//! passes over at most two pieces), adaptive merging invests more per query
//! to converge much faster:
//!
//! 1. The **first query** splits the column into equally sized *runs* and
//!    sorts each run (like run generation in external merge sort / a
//!    partitioned B-tree). This makes the first query noticeably more
//!    expensive than a plain scan — the price of fast convergence.
//! 2. Every subsequent query **merges** exactly the key range it asks for:
//!    the qualifying tuples are located in each run by binary search, removed
//!    from the runs, and merged into the *final index* (a sorted structure).
//! 3. Ranges that have been queried before are answered straight from the
//!    final index at B-tree-lookup cost; once the runs are empty the index is
//!    fully optimized and no further reorganization happens.
//!
//! ## Quick example
//!
//! ```
//! use aidx_merging::AdaptiveMergeIndex;
//!
//! let data = vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3];
//! let mut index = AdaptiveMergeIndex::from_keys(&data, 4);
//! let result = index.query_range(5, 15);
//! assert_eq!(result.keys(), &[7, 9, 12, 13]); // sorted: they come from the final index
//! assert!(index.merged_len() >= 4);
//! ```

#![warn(missing_docs)]

pub mod final_index;
pub mod run;
pub mod stats;

mod index;

pub use final_index::SortedRangeIndex;
pub use index::{AdaptiveMergeIndex, MergeRangeResult};
pub use run::SortedRun;
pub use stats::MergeStats;
