//! Instrumentation for adaptive merging.

/// Counters accumulated by an [`crate::AdaptiveMergeIndex`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Number of queries answered.
    pub queries: u64,
    /// Elements sorted during run generation (first query).
    pub elements_sorted: u64,
    /// Comparison work charged for run generation (n log n accounting).
    pub sort_comparisons: u64,
    /// Elements moved from runs into the final index.
    pub elements_merged: u64,
    /// Elements read from the final index to answer queries.
    pub elements_scanned: u64,
    /// Binary-search probes into runs (fence-key hits).
    pub run_probes: u64,
    /// Runs skipped thanks to fence keys.
    pub runs_skipped: u64,
}

impl MergeStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a query.
    pub fn record_query(&mut self) {
        self.queries += 1;
    }

    /// Record sorting `n` elements during run generation.
    pub fn record_sort(&mut self, n: usize) {
        self.elements_sorted += n as u64;
        let log = (n.max(2) as f64).log2().ceil() as u64;
        self.sort_comparisons += n as u64 * log;
    }

    /// Record merging `n` elements out of runs into the final index.
    pub fn record_merge(&mut self, n: usize) {
        self.elements_merged += n as u64;
    }

    /// Record scanning `n` elements of the final index for an answer.
    pub fn record_scan(&mut self, n: usize) {
        self.elements_scanned += n as u64;
    }

    /// Record probing a run (binary search) or skipping it via fence keys.
    pub fn record_probe(&mut self, skipped: bool) {
        if skipped {
            self.runs_skipped += 1;
        } else {
            self.run_probes += 1;
        }
    }

    /// Machine-independent total effort, comparable with
    /// `aidx_cracking::CrackStats::total_effort`.
    pub fn total_effort(&self) -> u64 {
        self.sort_comparisons + self.elements_merged + self.elements_scanned + self.run_probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = MergeStats::new();
        s.record_query();
        s.record_sort(1024);
        s.record_merge(10);
        s.record_scan(20);
        s.record_probe(false);
        s.record_probe(true);
        assert_eq!(s.queries, 1);
        assert_eq!(s.elements_sorted, 1024);
        assert_eq!(s.sort_comparisons, 10_240);
        assert_eq!(s.elements_merged, 10);
        assert_eq!(s.elements_scanned, 20);
        assert_eq!(s.run_probes, 1);
        assert_eq!(s.runs_skipped, 1);
        assert_eq!(s.total_effort(), 10_240 + 10 + 20 + 1);
    }

    #[test]
    fn sort_of_tiny_inputs() {
        let mut s = MergeStats::new();
        s.record_sort(0);
        s.record_sort(1);
        assert_eq!(s.elements_sorted, 1);
        assert_eq!(s.sort_comparisons, 1);
    }
}
