//! The maintenance scheduler: budgeted, incremental jobs driven by explicit
//! ticks or a dedicated background thread.
//!
//! A [`MaintenanceJob`] does a *bounded* slice of work per call — "merge at
//! most this many rows", "rebuild at most this many index entries" — and
//! reports whether anything is left. The [`Scheduler`] round-robins the
//! registered jobs inside one tick's budget, so no single job starves the
//! others and a tick's latency is bounded by the budget, not by the backlog.
//! [`BackgroundLoop`] runs ticks on a long-lived thread, between queries,
//! exactly the "index structure improves as a side effect of load, off the
//! critical path" economics the adaptive indexing papers argue for.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The outcome of one budgeted job slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// Budget units (rows) the slice consumed.
    pub units: usize,
    /// True when the job found nothing left to do.
    pub done: bool,
}

impl TickOutcome {
    /// A slice that found no work.
    pub fn idle() -> Self {
        TickOutcome {
            units: 0,
            done: true,
        }
    }
}

/// A unit of incremental background work.
pub trait MaintenanceJob: Send + Sync {
    /// Short, stable job name for statistics and logs.
    fn name(&self) -> &'static str;

    /// Perform at most `budget_units` units of work and report what
    /// happened. Implementations must be safe to call from any thread.
    fn run_slice(&self, budget_units: usize) -> TickOutcome;
}

/// A budgeted round-robin over registered [`MaintenanceJob`]s.
pub struct Scheduler {
    jobs: Vec<Arc<dyn MaintenanceJob>>,
    /// Round-robin starting point, so one hungry job cannot monopolize the
    /// front of every tick.
    cursor: Mutex<usize>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.jobs.iter().map(|j| j.name()).collect();
        f.debug_struct("Scheduler").field("jobs", &names).finish()
    }
}

impl Scheduler {
    /// A scheduler over the given jobs.
    pub fn new(jobs: Vec<Arc<dyn MaintenanceJob>>) -> Self {
        Scheduler {
            jobs,
            cursor: Mutex::new(0),
        }
    }

    /// The registered job names, in registration order.
    pub fn job_names(&self) -> Vec<&'static str> {
        self.jobs.iter().map(|j| j.name()).collect()
    }

    /// Run one tick: give each job (starting from the rotating cursor) a
    /// slice of the remaining budget until the budget is consumed or every
    /// job reports `done`. Returns the tick's aggregate outcome.
    pub fn tick(&self, budget_units: usize) -> TickOutcome {
        if self.jobs.is_empty() {
            return TickOutcome::idle();
        }
        let start = {
            let mut cursor = self.cursor.lock().expect("scheduler cursor poisoned");
            let s = *cursor;
            *cursor = (*cursor + 1) % self.jobs.len();
            s
        };
        let mut remaining = budget_units;
        let mut units = 0;
        let mut all_done = true;
        for offset in 0..self.jobs.len() {
            if remaining == 0 {
                all_done = false;
                break;
            }
            let job = &self.jobs[(start + offset) % self.jobs.len()];
            let outcome = job.run_slice(remaining);
            units += outcome.units;
            remaining = remaining.saturating_sub(outcome.units);
            all_done &= outcome.done;
        }
        TickOutcome {
            units,
            done: all_done,
        }
    }

    /// Tick until every job reports `done` within a single tick (or
    /// `max_ticks` is reached — a backstop against a job that never
    /// converges). Returns total units consumed.
    pub fn run_to_completion(&self, budget_units_per_tick: usize, max_ticks: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_ticks {
            let outcome = self.tick(budget_units_per_tick);
            total += outcome.units;
            if outcome.units == 0 {
                // either everything is done, or the budget is too small for
                // any job to make progress — looping further cannot help
                break;
            }
        }
        total
    }
}

/// A dedicated maintenance thread: runs `tick()` repeatedly with a pause in
/// between, until the loop is dropped or the tick callback asks to stop.
pub struct BackgroundLoop {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for BackgroundLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundLoop")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl BackgroundLoop {
    /// Spawn the loop. `tick` is called once per interval; returning `false`
    /// ends the loop (the kernel returns `false` once its database has been
    /// dropped — the loop holds only a weak reference, so maintenance never
    /// keeps a database alive).
    pub fn spawn(interval: Duration, mut tick: impl FnMut() -> bool + Send + 'static) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let (lock, condvar) = &*thread_stop;
            loop {
                {
                    let mut stopped = lock.lock().expect("background stop flag poisoned");
                    while !*stopped {
                        let (guard, timeout) = condvar
                            .wait_timeout(stopped, interval)
                            .expect("background stop flag poisoned");
                        stopped = guard;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                    if *stopped {
                        return;
                    }
                }
                if !tick() {
                    return;
                }
            }
        });
        BackgroundLoop {
            stop,
            handle: Some(handle),
        }
    }

    /// True while the loop's thread is attached (it may have exited on its
    /// own if the tick callback returned `false`).
    pub fn is_attached(&self) -> bool {
        self.handle.is_some()
    }
}

impl Drop for BackgroundLoop {
    fn drop(&mut self) {
        let (lock, condvar) = &*self.stop;
        *lock.lock().expect("background stop flag poisoned") = true;
        condvar.notify_all();
        if let Some(handle) = self.handle.take() {
            // The tick callback may itself own the last strong reference to
            // the state this loop is embedded in (the kernel's tick holds an
            // upgraded Arc while it works), in which case this destructor
            // runs ON the loop thread — joining would be a self-join
            // (EDEADLK / panic inside a destructor). The stop flag is
            // already set, so the thread exits right after the current tick;
            // detaching it here is safe.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountdownJob {
        name: &'static str,
        remaining: AtomicUsize,
    }

    impl MaintenanceJob for CountdownJob {
        fn name(&self) -> &'static str {
            self.name
        }
        fn run_slice(&self, budget: usize) -> TickOutcome {
            let left = self.remaining.load(Ordering::Relaxed);
            let take = left.min(budget);
            self.remaining.fetch_sub(take, Ordering::Relaxed);
            TickOutcome {
                units: take,
                done: left == take,
            }
        }
    }

    fn job(name: &'static str, work: usize) -> Arc<CountdownJob> {
        Arc::new(CountdownJob {
            name,
            remaining: AtomicUsize::new(work),
        })
    }

    #[test]
    fn tick_shares_the_budget_round_robin() {
        let a = job("a", 100);
        let b = job("b", 100);
        let scheduler = Scheduler::new(vec![a.clone(), b.clone()]);
        assert_eq!(scheduler.job_names(), vec!["a", "b"]);
        // first tick starts at a, second at b: both drain evenly
        let first = scheduler.tick(60);
        assert_eq!(first.units, 60);
        assert!(!first.done);
        let second = scheduler.tick(60);
        assert_eq!(second.units, 60);
        let drained_a =
            200 - a.remaining.load(Ordering::Relaxed) - b.remaining.load(Ordering::Relaxed);
        assert_eq!(drained_a, 120);
        // neither job got the whole 120
        assert!(a.remaining.load(Ordering::Relaxed) < 100);
        assert!(b.remaining.load(Ordering::Relaxed) < 100);
    }

    #[test]
    fn run_to_completion_drains_everything() {
        let a = job("a", 70);
        let b = job("b", 30);
        let scheduler = Scheduler::new(vec![a.clone(), b.clone()]);
        let total = scheduler.run_to_completion(16, 1_000);
        assert_eq!(total, 100);
        assert_eq!(a.remaining.load(Ordering::Relaxed), 0);
        assert_eq!(b.remaining.load(Ordering::Relaxed), 0);
        // a fresh tick is idle
        let idle = scheduler.tick(16);
        assert!(idle.done);
        assert_eq!(idle.units, 0);
    }

    #[test]
    fn empty_scheduler_is_idle() {
        let scheduler = Scheduler::new(Vec::new());
        assert!(scheduler.tick(100).done);
        assert_eq!(scheduler.run_to_completion(100, 10), 0);
        assert!(format!("{scheduler:?}").contains("Scheduler"));
    }

    #[test]
    fn background_loop_ticks_and_stops_on_drop() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let background = BackgroundLoop::spawn(Duration::from_millis(1), move || {
            seen.fetch_add(1, Ordering::Relaxed);
            true
        });
        assert!(background.is_attached());
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(ticks.load(Ordering::Relaxed) >= 3, "loop must tick");
        drop(background);
        let after = ticks.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            ticks.load(Ordering::Relaxed) <= after + 1,
            "drop must stop the loop"
        );
    }

    #[test]
    fn background_loop_survives_being_dropped_from_its_own_tick() {
        // regression: when the tick callback owns the last reference to the
        // structure embedding the loop, the destructor runs ON the loop
        // thread — joining there would self-join (EDEADLK / panic inside a
        // destructor). Simulate by handing the loop to its own tick.
        let slot: Arc<Mutex<Option<BackgroundLoop>>> = Arc::new(Mutex::new(None));
        let tick_slot = Arc::clone(&slot);
        let dropped = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&dropped);
        let background = BackgroundLoop::spawn(Duration::from_millis(1), move || {
            if let Some(owned) = tick_slot.lock().unwrap().take() {
                drop(owned); // Drop runs on the loop thread itself
                observed.fetch_add(1, Ordering::Relaxed);
            }
            false // thread exits on its own right after
        });
        *slot.lock().unwrap() = Some(background);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dropped.load(Ordering::Relaxed) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "the tick never managed to drop the loop"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // reaching this point without a panic or deadlock is the assertion
    }

    #[test]
    fn background_loop_exits_when_the_callback_declines() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let background = BackgroundLoop::spawn(Duration::from_millis(1), move || {
            seen.fetch_add(1, Ordering::Relaxed) < 2
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticks.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ticks.load(Ordering::Relaxed), 3, "stops after declining");
        drop(background); // joining an already-exited thread is fine
    }
}
