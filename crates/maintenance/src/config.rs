//! Configuration and statistics for the maintenance subsystem.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Tuning knobs for the background maintenance subsystem, set through the
/// kernel's `DatabaseBuilder::maintenance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// Maximum rows a single maintenance tick may rewrite (compaction
    /// copying plus index rebuilding). Keeps every tick short so maintenance
    /// interleaves with queries instead of stalling them. Defaults to
    /// `65_536`.
    pub budget_rows_per_tick: usize,
    /// Fill fraction (of the segment capacity) below which a sealed chunk
    /// counts as a fragment worth merging. Must be in `(0, 1]`. Defaults to
    /// `0.5`.
    pub min_chunk_fill: f64,
    /// Chunk-count multiple (relative to the ideal `ceil(rows / capacity)`)
    /// a column may reach before it is considered fragmented at all. Must be
    /// at least `1.0`. Defaults to `1.0` (any fragment run is eligible).
    pub max_chunk_slack: f64,
    /// Run maintenance ticks continuously on a dedicated background thread.
    /// When `false`, maintenance runs only when explicitly driven
    /// (`Database::compact`, `Database::maintenance_tick`). Defaults to
    /// `false`.
    pub background: bool,
    /// How long the background thread sleeps between ticks. Defaults to
    /// 10 ms.
    pub tick_interval: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            budget_rows_per_tick: 65_536,
            min_chunk_fill: 0.5,
            max_chunk_slack: 1.0,
            background: false,
            tick_interval: Duration::from_millis(10),
        }
    }
}

impl MaintenanceConfig {
    /// Validate the configuration; the first violated constraint is
    /// described in the returned error string (the kernel maps it to its
    /// typed configuration error).
    pub fn validate(&self) -> Result<(), String> {
        if self.budget_rows_per_tick == 0 {
            return Err("budget_rows_per_tick must be at least 1".to_owned());
        }
        // NaN must fail both checks, so phrase them as "accept iff provably
        // in range" rather than with negated comparisons
        let fill_ok = self.min_chunk_fill > 0.0 && self.min_chunk_fill <= 1.0;
        if !fill_ok {
            return Err("min_chunk_fill must be in (0, 1]".to_owned());
        }
        let slack_ok = self.max_chunk_slack >= 1.0;
        if !slack_ok {
            return Err("max_chunk_slack must be at least 1.0".to_owned());
        }
        if self.background && self.tick_interval.is_zero() {
            return Err("tick_interval must be non-zero for background mode".to_owned());
        }
        Ok(())
    }
}

/// Cumulative counters the maintenance subsystem exposes; updated with
/// relaxed atomics from whichever thread runs a tick, snapshot with
/// [`MaintenanceStats::snapshot`].
#[derive(Debug, Default)]
pub struct MaintenanceStats {
    /// Maintenance ticks executed (background and explicit).
    pub ticks: AtomicU64,
    /// Rows rewritten by chunk compaction.
    pub rows_compacted: AtomicU64,
    /// Sealed chunks eliminated by compaction.
    pub chunks_removed: AtomicU64,
    /// Compacted tables published (epoch bumps through the reconcilable
    /// path).
    pub compactions_published: AtomicU64,
    /// Adaptive indexes carried across a compaction epoch instead of being
    /// dropped.
    pub indexes_reconciled: AtomicU64,
    /// Stale adaptive indexes rebuilt in the background before a query had
    /// to pay for it.
    pub indexes_refreshed: AtomicU64,
    /// Indexes force-rebuilt under a different strategy by the alert
    /// runtime's self-healing `RefreshIndex` action (e.g. a stalled
    /// cracking column flipped onto a convergent strategy).
    pub indexes_remediated: AtomicU64,
    /// Durable checkpoints completed by the background checkpoint job.
    pub checkpoints_written: AtomicU64,
    /// Checkpoint attempts that failed (I/O errors); the log retains the
    /// uncovered suffix, so a failure costs disk space, not durability.
    pub checkpoint_failures: AtomicU64,
    /// Whether a background maintenance thread is attached.
    pub background_attached: AtomicBool,
}

impl MaintenanceStats {
    /// A coherent point-in-time copy of the counters.
    pub fn snapshot(&self) -> MaintenanceStatsSnapshot {
        MaintenanceStatsSnapshot {
            ticks: self.ticks.load(Ordering::Relaxed),
            rows_compacted: self.rows_compacted.load(Ordering::Relaxed),
            chunks_removed: self.chunks_removed.load(Ordering::Relaxed),
            compactions_published: self.compactions_published.load(Ordering::Relaxed),
            indexes_reconciled: self.indexes_reconciled.load(Ordering::Relaxed),
            indexes_refreshed: self.indexes_refreshed.load(Ordering::Relaxed),
            indexes_remediated: self.indexes_remediated.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            background_attached: self.background_attached.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`MaintenanceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStatsSnapshot {
    /// Maintenance ticks executed.
    pub ticks: u64,
    /// Rows rewritten by chunk compaction.
    pub rows_compacted: u64,
    /// Sealed chunks eliminated by compaction.
    pub chunks_removed: u64,
    /// Compacted tables published.
    pub compactions_published: u64,
    /// Indexes carried across a compaction epoch.
    pub indexes_reconciled: u64,
    /// Stale indexes rebuilt in the background.
    pub indexes_refreshed: u64,
    /// Indexes force-rebuilt by the alert runtime's self-healing action.
    pub indexes_remediated: u64,
    /// Durable checkpoints completed.
    pub checkpoints_written: u64,
    /// Checkpoint attempts that failed.
    pub checkpoint_failures: u64,
    /// Whether a background maintenance thread is attached.
    pub background_attached: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(MaintenanceConfig::default().validate().is_ok());
    }

    #[test]
    fn each_constraint_is_enforced() {
        let ok = MaintenanceConfig::default();
        for (config, needle) in [
            (
                MaintenanceConfig {
                    budget_rows_per_tick: 0,
                    ..ok
                },
                "budget_rows_per_tick",
            ),
            (
                MaintenanceConfig {
                    min_chunk_fill: 0.0,
                    ..ok
                },
                "min_chunk_fill",
            ),
            (
                MaintenanceConfig {
                    min_chunk_fill: 1.5,
                    ..ok
                },
                "min_chunk_fill",
            ),
            (
                MaintenanceConfig {
                    max_chunk_slack: 0.5,
                    ..ok
                },
                "max_chunk_slack",
            ),
            (
                MaintenanceConfig {
                    background: true,
                    tick_interval: Duration::ZERO,
                    ..ok
                },
                "tick_interval",
            ),
        ] {
            let err = config.validate().expect_err("must be rejected");
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn stats_snapshot_reflects_counters() {
        let stats = MaintenanceStats::default();
        stats.ticks.fetch_add(3, Ordering::Relaxed);
        stats.rows_compacted.fetch_add(100, Ordering::Relaxed);
        stats.background_attached.store(true, Ordering::Relaxed);
        let snapshot = stats.snapshot();
        assert_eq!(snapshot.ticks, 3);
        assert_eq!(snapshot.rows_compacted, 100);
        assert!(snapshot.background_attached);
        assert_eq!(snapshot.indexes_reconciled, 0);
    }
}
