//! The compaction policy: decides *which* runs of undersized chunks to
//! merge, and in what order, under a per-tick row budget.
//!
//! The policy is deliberately storage-agnostic — it plans over plain chunk
//! row counts — so it can be unit-tested exhaustively and reused by any
//! column layout. The kernel layer feeds it each column's
//! `sealed_chunk_lens()` plus a query-driven hotness score and applies the
//! returned plan with the column store's `compact_runs`.

/// Size-tiered, budgeted planning of chunk-merge runs.
///
/// A sealed chunk is a *fragment* when it holds fewer than
/// `min_fill * capacity` rows; a maximal run of **consecutive undersized**
/// chunks (anything below `capacity`) containing at least one fragment is a
/// merge candidate when merging actually reduces the chunk count. Runs are
/// truncated to the row budget, so one planning call never schedules more
/// copying than a tick is allowed to do — compaction stays incremental,
/// adaptive-merging style: every tick leaves the column strictly less
/// fragmented, and repeated ticks converge to full chunks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Fill fraction (of the chunk capacity) below which a sealed chunk is
    /// considered a fragment worth merging. Defaults to `0.5`.
    pub min_fill: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { min_fill: 0.5 }
    }
}

/// One planning result: merge runs plus the rows they will copy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionPlan {
    /// Half-open `[start, end)` runs of sealed-chunk indexes to merge,
    /// sorted and disjoint.
    pub runs: Vec<(usize, usize)>,
    /// Total rows the runs will rewrite (the budget they consume).
    pub rows: usize,
    /// Sealed chunks the plan eliminates (`count - ceil(rows / capacity)`
    /// summed over runs).
    pub chunks_removed: usize,
}

impl CompactionPlan {
    /// True when the plan schedules no work.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

impl CompactionPolicy {
    /// True when a sealed chunk of `len` rows counts as a fragment under
    /// this policy (for `capacity`-row chunks).
    pub fn is_fragment(&self, len: usize, capacity: usize) -> bool {
        (len as f64) < self.min_fill * capacity as f64
    }

    /// Plan merge runs over a column whose sealed chunks hold
    /// `chunk_lens` rows each, copying at most `budget_rows` rows.
    ///
    /// Runs are maximal stretches of consecutive undersized chunks
    /// (`len < capacity`) that contain at least one genuine fragment
    /// (`len < min_fill * capacity`) and whose merge removes at least one
    /// chunk. A run that would blow the remaining budget is truncated to a
    /// prefix that still removes a chunk; planning stops when the budget is
    /// exhausted. The returned runs are sorted, disjoint, and safe to hand
    /// to `Segment::compact_runs` directly.
    pub fn plan(
        &self,
        chunk_lens: &[usize],
        capacity: usize,
        budget_rows: usize,
    ) -> CompactionPlan {
        assert!(capacity > 0, "chunk capacity must be at least 1");
        let mut plan = CompactionPlan::default();
        let mut budget = budget_rows;
        let mut i = 0;
        while i < chunk_lens.len() && budget > 0 {
            if chunk_lens[i] >= capacity {
                i += 1;
                continue;
            }
            // maximal run of undersized chunks starting at i
            let mut end = i;
            while end < chunk_lens.len() && chunk_lens[end] < capacity {
                end += 1;
            }
            let has_fragment = chunk_lens[i..end]
                .iter()
                .any(|&len| self.is_fragment(len, capacity));
            if has_fragment {
                // truncate to the budget: take the longest prefix whose rows
                // fit, then check it still removes at least one chunk
                let mut take = i;
                let mut rows = 0;
                while take < end && rows + chunk_lens[take] <= budget {
                    rows += chunk_lens[take];
                    take += 1;
                }
                let count = take - i;
                let merged_chunks = rows.div_ceil(capacity);
                if count >= 2 && merged_chunks < count {
                    plan.runs.push((i, take));
                    plan.rows += rows;
                    plan.chunks_removed += count - merged_chunks;
                    budget -= rows;
                }
            }
            i = end;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_chunks_are_never_planned() {
        let policy = CompactionPolicy::default();
        let plan = policy.plan(&[8, 8, 8], 8, usize::MAX);
        assert!(plan.is_empty());
        assert_eq!(plan.rows, 0);
    }

    #[test]
    fn runs_of_fragments_merge_into_fewer_chunks() {
        let policy = CompactionPolicy::default();
        // one full chunk, then six single-row fragments, then a full chunk
        let plan = policy.plan(&[8, 1, 1, 1, 1, 1, 1, 8], 8, usize::MAX);
        assert_eq!(plan.runs, vec![(1, 7)]);
        assert_eq!(plan.rows, 6);
        assert_eq!(plan.chunks_removed, 5, "6 fragments -> 1 chunk");
    }

    #[test]
    fn merely_undersized_runs_without_a_fragment_are_left_alone() {
        let policy = CompactionPolicy { min_fill: 0.5 };
        // 6-row chunks are undersized for capacity 8 but above the 0.5 fill
        // floor: not worth rewriting
        let plan = policy.plan(&[6, 6, 6], 8, usize::MAX);
        assert!(plan.is_empty());
        // one genuine fragment in the middle pulls the whole run in
        let plan = policy.plan(&[6, 2, 6], 8, usize::MAX);
        assert_eq!(plan.runs, vec![(0, 3)]);
        assert_eq!(plan.chunks_removed, 1, "14 rows -> 2 chunks");
    }

    #[test]
    fn disjoint_runs_are_all_planned_in_order() {
        let policy = CompactionPolicy::default();
        let plan = policy.plan(&[1, 1, 8, 2, 2, 2, 8, 3, 3], 8, usize::MAX);
        assert_eq!(plan.runs, vec![(0, 2), (3, 6), (7, 9)]);
        assert_eq!(plan.rows, 2 + 6 + 6);
        assert_eq!(plan.chunks_removed, 1 + 2 + 1);
    }

    #[test]
    fn budget_truncates_and_stops_planning() {
        let policy = CompactionPolicy::default();
        // 10 single-row fragments, budget for only 4 rows
        let plan = policy.plan(&[1; 10], 8, 4);
        assert_eq!(plan.runs, vec![(0, 4)]);
        assert_eq!(plan.rows, 4);
        assert_eq!(plan.chunks_removed, 3);
        // a budget too small to remove a chunk plans nothing
        let plan = policy.plan(&[1; 10], 8, 1);
        assert!(plan.is_empty());
        // zero budget plans nothing
        assert!(policy.plan(&[1; 10], 8, 0).is_empty());
    }

    #[test]
    fn single_isolated_fragment_cannot_merge_alone() {
        let policy = CompactionPolicy::default();
        // a lone fragment between full chunks: merging "a run of one" is a
        // pointless rewrite and must not be planned
        let plan = policy.plan(&[8, 1, 8], 8, usize::MAX);
        assert!(plan.is_empty());
    }

    #[test]
    fn repeated_ticks_converge_to_no_work() {
        let policy = CompactionPolicy::default();
        let mut lens = vec![1usize; 40];
        let capacity = 8;
        let mut ticks = 0;
        loop {
            let plan = policy.plan(&lens, capacity, 16);
            if plan.is_empty() {
                break;
            }
            ticks += 1;
            assert!(ticks < 100, "compaction must converge");
            // apply the plan to the model
            let mut next = Vec::new();
            let mut cursor = 0;
            for &(start, end) in &plan.runs {
                next.extend_from_slice(&lens[cursor..start]);
                let rows: usize = lens[start..end].iter().sum();
                let mut remaining = rows;
                while remaining > 0 {
                    let take = remaining.min(capacity);
                    next.push(take);
                    remaining -= take;
                }
                cursor = end;
            }
            next.extend_from_slice(&lens[cursor..]);
            lens = next;
        }
        let total: usize = lens.iter().sum();
        assert_eq!(total, 40, "no rows lost");
        // everything that can be a full chunk is one
        assert!(lens.iter().filter(|&&l| l == capacity).count() >= 4);
    }
}
