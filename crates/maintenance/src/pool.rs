//! The persistent worker pool: long-lived parked threads with a fork/join
//! `run` API.
//!
//! [`WorkerPool`] replaces the per-region scoped spawns the parallel engine
//! started with: `new(threads)` spawns `threads - 1` workers **once** and
//! parks them on a condition variable; every subsequent fork/join region
//! ([`WorkerPool::run`]) hands the parked workers a job instead of paying
//! thread creation. The submitting thread participates as the final worker,
//! so `threads` is the true concurrency of a region, exactly as it was with
//! scoped spawns — but worker thread identities are now stable across
//! regions, which is what lets the maintenance scheduler and the query
//! engine share one standing set of cores (Alvarez et al.'s multi-core
//! design) instead of spawning per call.
//!
//! Semantics are identical to the scoped pool it replaces:
//!
//! * results are returned **in task order** regardless of which worker ran
//!   which task (workers claim task indexes from an atomic counter and write
//!   results into per-task slots);
//! * task panics propagate to the submitter after the region completes;
//! * a one-thread pool, a single task, or zero tasks run inline on the
//!   caller.
//!
//! One job occupies the pool at a time. A region submitted while another is
//! in flight — or from *inside* a pool task (a nested fork) — executes
//! entirely inline on the submitting thread instead of blocking, so the pool
//! can never deadlock on itself and every region always makes progress.
//!
//! # Safety
//!
//! Workers call the submitter's closure through a type-erased raw pointer.
//! This is sound because `run` does not return until every claimed task has
//! finished executing (`completed == tasks`), so the closure and the result
//! slots it writes into — both owned by `run`'s stack frame — strictly
//! outlive every dereference. A worker may briefly hold its `Arc<JobCore>`
//! *after* the final task completes, but by then it only drops the `Arc`;
//! the dangling closure pointer inside is never called again.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

std::thread_local! {
    /// True while the current thread is executing tasks of a pool job (as a
    /// pool worker or as a participating submitter). A `run` call issued
    /// from such a context executes inline: nested forks must not wait on
    /// the pool they are already running on.
    static INSIDE_POOL_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One fork/join region's shared state.
struct JobCore {
    /// Type-erased pointer to the submitter's task closure. Only valid
    /// until `completed == tasks`; see the module-level safety argument.
    task: *const (dyn Fn(usize) + Sync),
    /// Number of tasks in the region.
    tasks: usize,
    /// Next unclaimed task index (may grow past `tasks`; claims beyond the
    /// end mean "nothing left").
    next: AtomicUsize,
    /// Tasks that have finished executing.
    completed: AtomicUsize,
    /// First panic payload raised by a task, if any.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

// SAFETY: the closure behind `task` is `Sync` (shared by reference across
// workers) and the submitter keeps it alive for the duration of all calls;
// the remaining fields are atomics and a mutex.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

struct PoolState {
    /// The job currently occupying the pool, if any.
    job: Option<Arc<JobCore>>,
    /// Set once, when the pool is dropped.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a job (or shutdown).
    work_ready: Condvar,
    /// Submitters park here waiting for their job's completion.
    job_done: Condvar,
}

/// A fixed set of persistent worker threads with a fork/join execution API.
///
/// ```
/// use aidx_maintenance::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.run(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // the same (parked) workers serve the next region — no respawn
/// let doubled = pool.run(8, |i| i * 2);
/// assert_eq!(doubled[7], 14);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `threads` total workers (clamped to at least 1): the
    /// submitting thread plus `threads - 1` spawned, parked threads. A
    /// one-thread pool spawns nothing and runs every region inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// The pool's total worker budget (spawned workers + the submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool never forks (every `run` executes inline).
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Execute `f(0) .. f(tasks - 1)` across the pool's workers and return
    /// the results in task-index order.
    ///
    /// Scheduling is dynamic (workers pull the next unclaimed index), the
    /// output is deterministic (slot `i` always holds `f(i)`). Runs inline
    /// on the calling thread when the pool is serial, the region is trivial
    /// (`tasks <= 1`), the pool is already busy with another region, or the
    /// call is a nested fork from inside a pool task.
    ///
    /// # Panics
    /// Propagates a panic from any task after the whole region has finished.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.workers.is_empty() || tasks <= 1 || INSIDE_POOL_TASK.with(|flag| flag.get()) {
            return (0..tasks).map(f).collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || None);
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        // Each task index is claimed exactly once, so the writes through the
        // raw pointer go to disjoint slots; `run` owns the Vec and outlives
        // all of them.
        let task = move |i: usize| {
            let result = f(i);
            unsafe { *slots_ptr.get().add(i) = Some(result) };
        };
        let local: *const (dyn Fn(usize) + Sync + '_) = &task;
        // SAFETY: pure lifetime erasure on a wide pointer. The closure (and
        // everything it borrows) outlives every dereference because `run`
        // blocks until `completed == tasks` — see the module-level argument.
        let erased: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(local) };
        let core = Arc::new(JobCore {
            task: erased,
            tasks,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let pool_busy = {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            if state.job.is_some() {
                true
            } else {
                state.job = Some(Arc::clone(&core));
                false
            }
        };
        if pool_busy {
            // the pool is busy with another region: execute inline rather
            // than blocking (the busy region may be arbitrarily long, and
            // waiting could stack submitters up behind it)
            for i in 0..tasks {
                task(i);
            }
            return slots
                .into_iter()
                .map(|slot| slot.expect("inline execution filled every slot"))
                .collect();
        }
        self.shared.work_ready.notify_all();
        // participate as the final worker
        execute_claims(&self.shared, &core);
        // wait until every claimed task has finished executing
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            while core.completed.load(Ordering::Acquire) < tasks {
                state = self
                    .shared
                    .job_done
                    .wait(state)
                    .expect("pool mutex poisoned");
            }
        }
        if let Some(payload) = core.panic.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index claimed exactly once"))
            .collect()
    }
}

/// A raw pointer that may cross thread boundaries (the disjoint-slot writes
/// are justified at the use site).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Send + Sync` wrapper, not the bare pointer — edition-2021 disjoint
    /// capture would otherwise capture the field and lose the marker impls.
    fn get(self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Claim and execute tasks of `core` until none are left, then retire the
/// job from the pool's active slot. Shared by workers and the submitter.
fn execute_claims(shared: &PoolShared, core: &Arc<JobCore>) {
    INSIDE_POOL_TASK.with(|flag| flag.set(true));
    loop {
        let i = core.next.fetch_add(1, Ordering::Relaxed);
        if i >= core.tasks {
            break;
        }
        // SAFETY: i < tasks, so the region is not complete and the closure
        // is still alive (see the module-level argument).
        let outcome = catch_unwind(AssertUnwindSafe(|| (unsafe { &*core.task })(i)));
        if let Err(payload) = outcome {
            let mut slot = core.panic.lock().expect("panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let done = core.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == core.tasks {
            // hold the mutex across the notification so the submitter's
            // check-then-wait cannot miss it
            let _state = shared.state.lock().expect("pool mutex poisoned");
            shared.job_done.notify_all();
        }
    }
    INSIDE_POOL_TASK.with(|flag| flag.set(false));
    // claims are exhausted: retire the job so parked workers stop seeing it
    let mut state = shared.state.lock().expect("pool mutex poisoned");
    if let Some(current) = &state.job {
        if Arc::ptr_eq(current, core) {
            state.job = None;
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let core = {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(core) = state.job.clone() {
                    break core;
                }
                state = shared.work_ready.wait(state).expect("pool mutex poisoned");
            }
        };
        execute_claims(shared, &core);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::thread::ThreadId;

    #[test]
    fn results_are_in_task_order_at_any_parallelism() {
        for threads in [1, 2, 3, 4, 8] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(37, |i| i as u64 * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once_across_many_regions() {
        let pool = WorkerPool::new(4);
        for _ in 0..50 {
            let counter = AtomicU64::new(0);
            let out = pool.run(200, |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(counter.load(Ordering::Relaxed), 200);
            assert!(out.iter().enumerate().all(|(i, &v)| i == v));
        }
    }

    #[test]
    fn workers_are_persistent_across_fork_join_regions() {
        let pool = WorkerPool::new(4);
        let observe = |pool: &WorkerPool| -> HashSet<ThreadId> {
            let ids = Mutex::new(HashSet::new());
            pool.run(64, |_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // give other workers a chance to claim tasks too
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
            ids.into_inner().unwrap()
        };
        let first = observe(&pool);
        for _ in 0..5 {
            let again = observe(&pool);
            assert!(
                again.is_subset(&first),
                "later regions must reuse the original threads: {again:?} vs {first:?}"
            );
        }
    }

    #[test]
    fn serial_and_trivial_regions_run_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.is_serial());
        assert!(pool.workers.is_empty(), "no threads for a serial pool");
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
        let pool = WorkerPool::new(8);
        let caller = std::thread::current().id();
        let ran_on = pool.run(1, |_| std::thread::current().id());
        assert_eq!(ran_on, vec![caller], "single task runs inline");
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(WorkerPool::new(0).threads(), 1, "clamped to 1");
    }

    #[test]
    fn nested_forks_run_inline_instead_of_deadlocking() {
        let pool = WorkerPool::new(4);
        let out = pool.run(8, |i| {
            // a nested region from inside a pool task must not wait on the
            // pool that is executing it
            let inner: usize = pool.run(4, |j| j).into_iter().sum();
            i * 100 + inner
        });
        assert_eq!(out, (0..8).map(|i| i * 100 + 6).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = Arc::new(WorkerPool::new(4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let out = pool.run(100, |i| i + t);
                assert_eq!(out.len(), 100);
                assert!(out.iter().enumerate().all(|(i, &v)| v == i + t));
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn worker_panics_propagate_and_the_pool_survives() {
        let pool = WorkerPool::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 11 {
                    panic!("task failure");
                }
                i
            })
        }));
        assert!(result.is_err());
        // the persistent workers are still alive and serving regions
        let out = pool.run(16, |i| i * 2);
        assert_eq!(out[15], 30);
    }

    #[test]
    fn uneven_task_durations_still_merge_deterministically() {
        let pool = WorkerPool::new(4);
        let out = pool.run(64, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<usize>>());
    }
}
