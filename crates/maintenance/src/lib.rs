//! # aidx-maintenance
//!
//! The background maintenance subsystem: a **persistent worker pool**, a
//! **budgeted job scheduler**, and the **compaction policy** — the standing
//! machinery that lets the kernel keep improving its physical layout as a
//! side effect of load, off the query critical path.
//!
//! The EDBT 2012 adaptive-indexing argument is that reorganization should be
//! incremental and demand-driven rather than blocking and offline. Queries
//! already do that for *index* structure; this crate extends the same
//! economics to *storage* structure, following the two concurrency
//! follow-ups: Graefe et al. show reorganization can run concurrently with
//! queries under short latches (here: budgeted ticks that publish through
//! the catalog's copy-on-write swap), and Alvarez et al. motivate a standing
//! pool of cores instead of per-call threads (here: [`WorkerPool`], which
//! the query engine's fork/join API is re-implemented on top of).
//!
//! The crate is deliberately substrate-agnostic (`std` only): the
//! [`CompactionPolicy`] plans over plain chunk row counts and the
//! [`Scheduler`] drives opaque [`MaintenanceJob`]s, so the kernel layer owns
//! all catalog and index-manager specifics.
//!
//! ```
//! use aidx_maintenance::{CompactionPolicy, WorkerPool};
//!
//! // plan merge runs over a fragmented column (chunk capacity 8)
//! let policy = CompactionPolicy::default();
//! let plan = policy.plan(&[8, 1, 1, 1, 8], 8, usize::MAX);
//! assert_eq!(plan.runs, vec![(1, 4)]);
//!
//! // a persistent fork/join pool: workers are parked, not respawned
//! let pool = WorkerPool::new(2);
//! assert_eq!(pool.run(4, |i| i * i), vec![0, 1, 4, 9]);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod policy;
pub mod pool;
pub mod scheduler;

pub use config::{MaintenanceConfig, MaintenanceStats, MaintenanceStatsSnapshot};
pub use policy::{CompactionPlan, CompactionPolicy};
pub use pool::WorkerPool;
pub use scheduler::{BackgroundLoop, MaintenanceJob, Scheduler, TickOutcome};
