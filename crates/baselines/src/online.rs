//! Online index tuning (COLT-style monitor-and-create).
//!
//! Online analysis moves the what-if paradigm into query execution: the
//! system answers queries with scans while *monitoring* them, accumulates the
//! estimated benefit a hypothetical index would have delivered, and triggers
//! index construction once the accumulated benefit exceeds the construction
//! cost. The query that crosses the threshold pays the full construction
//! penalty — exactly the drawback the tutorial contrasts with adaptive
//! indexing's incremental investment.

use crate::cost::{BaselineStats, CostModel};
use crate::sorted::FullSortIndex;
use aidx_columnstore::position::PositionList;
use aidx_columnstore::types::{Key, RowId};

/// An online index tuner over one key column.
#[derive(Debug, Clone)]
pub struct OnlineIndexTuner {
    keys: Vec<Key>,
    index: Option<FullSortIndex>,
    cost_model: CostModel,
    /// Benefit accumulated from observed queries (work units).
    accumulated_benefit: f64,
    /// Multiplier on the build cost before construction triggers (1.0 =
    /// build as soon as the observed benefit would have paid for the index).
    trigger_factor: f64,
    stats: BaselineStats,
    build_at_query: Option<u64>,
}

impl OnlineIndexTuner {
    /// Create a tuner with the default cost model and a trigger factor of 1.
    pub fn from_keys(keys: &[Key]) -> Self {
        Self::with_settings(keys, CostModel::default(), 1.0)
    }

    /// Create a tuner from a key stream with the default settings (one
    /// collect, no transient contiguous copy for chunked sources).
    pub fn from_key_iter(keys: impl ExactSizeIterator<Item = Key>) -> Self {
        OnlineIndexTuner {
            keys: keys.collect(),
            index: None,
            cost_model: CostModel::default(),
            accumulated_benefit: 0.0,
            trigger_factor: 1.0,
            stats: BaselineStats::new(),
            build_at_query: None,
        }
    }

    /// Create a tuner with explicit cost model and trigger factor.
    pub fn with_settings(keys: &[Key], cost_model: CostModel, trigger_factor: f64) -> Self {
        OnlineIndexTuner {
            keys: keys.to_vec(),
            index: None,
            cost_model,
            accumulated_benefit: 0.0,
            trigger_factor: trigger_factor.max(0.0),
            stats: BaselineStats::new(),
            build_at_query: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether the full index has been built yet.
    pub fn index_built(&self) -> bool {
        self.index.is_some()
    }

    /// The query number (1-based) at which the index was built, if it was.
    pub fn build_at_query(&self) -> Option<u64> {
        self.build_at_query
    }

    /// Benefit accumulated so far from monitoring (work units).
    pub fn accumulated_benefit(&self) -> f64 {
        self.accumulated_benefit
    }

    /// Accumulated work counters (scans + the index build, once it happens;
    /// the inner index's own counters are folded in lazily via
    /// [`Self::total_effort`]).
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Total machine-independent effort including the built index's own
    /// bookkeeping.
    pub fn total_effort(&self) -> u64 {
        self.stats.total_effort()
            + self
                .index
                .as_ref()
                .map_or(0, |index| index.stats().total_effort())
    }

    /// Answer `[low, high)`; monitor, and possibly trigger index
    /// construction first.
    pub fn query_range(&mut self, low: Key, high: Key) -> PositionList {
        self.stats.record_query();
        if self.keys.is_empty() || low >= high {
            return PositionList::new();
        }

        if self.index.is_none() {
            // monitoring: estimate what an index would have saved for this query
            let span = (self.keys.len()).max(1);
            let selectivity = estimate_selectivity(&self.keys, low, high);
            self.accumulated_benefit += self.cost_model.per_query_benefit(span, selectivity);
            let threshold = self.cost_model.index_build_cost(span) * self.trigger_factor;
            if self.accumulated_benefit >= threshold {
                // the crossing query pays for construction
                self.index = Some(FullSortIndex::from_keys(&self.keys));
                self.build_at_query = Some(self.stats.queries);
            }
        }

        match &mut self.index {
            Some(index) => index.query_range(low, high),
            None => {
                self.stats.record_scan(self.keys.len());
                let mut out: Vec<RowId> = Vec::new();
                for (i, &v) in self.keys.iter().enumerate() {
                    if v >= low && v < high {
                        out.push(i as RowId);
                    }
                }
                PositionList::from_sorted_vec(out)
            }
        }
    }

    /// Count the qualifying tuples of `[low, high)`.
    pub fn count_range(&mut self, low: Key, high: Key) -> usize {
        self.query_range(low, high).len()
    }
}

/// Cheap sampled selectivity estimate (the monitor must not pay a full scan
/// on top of the query's own scan).
fn estimate_selectivity(keys: &[Key], low: Key, high: Key) -> f64 {
    if keys.is_empty() || low >= high {
        return 0.0;
    }
    let step = (keys.len() / 1024).max(1);
    let mut sampled = 0usize;
    let mut matching = 0usize;
    let mut i = 0;
    while i < keys.len() {
        sampled += 1;
        if keys[i] >= low && keys[i] < high {
            matching += 1;
        }
        i += step;
    }
    matching as f64 / sampled as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<Key> {
        (0..n as Key).map(|i| (i * 7919) % n as Key).collect()
    }

    #[test]
    fn index_is_built_after_enough_queries() {
        let keys = data(100_000);
        let mut tuner = OnlineIndexTuner::from_keys(&keys);
        assert!(!tuner.index_built());
        let mut built_at = None;
        for q in 0..200 {
            let low = (q * 431) % 90_000;
            let _ = tuner.query_range(low, low + 1000);
            if tuner.index_built() {
                built_at = tuner.build_at_query();
                break;
            }
        }
        assert!(
            tuner.index_built(),
            "selective queries must trigger the index"
        );
        let built_at = built_at.unwrap();
        assert!(built_at > 1, "not on the very first query");
        assert!(built_at < 100, "but within a reasonable horizon");
    }

    #[test]
    fn answers_correct_before_and_after_build() {
        let keys = data(20_000);
        let mut tuner = OnlineIndexTuner::from_keys(&keys);
        for q in 0..100 {
            let low = (q * 173) % 18_000;
            let high = low + 500;
            let got = tuner.query_range(low, high);
            let expected = keys.iter().filter(|&&k| k >= low && k < high).count();
            assert_eq!(got.len(), expected, "query {q}");
        }
        assert!(tuner.index_built());
    }

    #[test]
    fn unselective_workload_never_builds() {
        let keys = data(10_000);
        // full-range queries: an index would not help, benefit stays ~0
        let mut tuner = OnlineIndexTuner::from_keys(&keys);
        for _ in 0..50 {
            let _ = tuner.query_range(Key::MIN, Key::MAX);
        }
        assert!(!tuner.index_built());
        assert!(tuner.accumulated_benefit() < tuner.cost_model.index_build_cost(10_000));
    }

    #[test]
    fn trigger_factor_delays_construction() {
        let keys = data(50_000);
        let mut eager = OnlineIndexTuner::with_settings(&keys, CostModel::default(), 1.0);
        let mut reluctant = OnlineIndexTuner::with_settings(&keys, CostModel::default(), 10.0);
        for q in 0..300 {
            let low = (q * 97) % 45_000;
            let _ = eager.query_range(low, low + 200);
            let _ = reluctant.query_range(low, low + 200);
        }
        assert!(eager.index_built());
        match (eager.build_at_query(), reluctant.build_at_query()) {
            (Some(e), Some(r)) => assert!(e < r, "eager {e} must build before reluctant {r}"),
            (Some(_), None) => {} // reluctant never built: also fine
            other => panic!("unexpected build pattern {other:?}"),
        }
    }

    #[test]
    fn scan_cost_disappears_after_build() {
        let keys = data(50_000);
        let mut tuner = OnlineIndexTuner::from_keys(&keys);
        for q in 0..100 {
            let low = (q * 211) % 45_000;
            let _ = tuner.query_range(low, low + 100);
        }
        assert!(tuner.index_built());
        let scanned_before = tuner.stats().elements_scanned;
        for q in 0..50 {
            let low = (q * 211) % 45_000;
            let _ = tuner.query_range(low, low + 100);
        }
        assert_eq!(
            tuner.stats().elements_scanned,
            scanned_before,
            "after the build no more full scans happen"
        );
        assert!(tuner.total_effort() > 0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut tuner = OnlineIndexTuner::from_keys(&[]);
        assert!(tuner.is_empty());
        assert!(tuner.query_range(0, 10).is_empty());
        let mut tuner = OnlineIndexTuner::from_keys(&[5, 1, 9]);
        assert_eq!(tuner.len(), 3);
        assert_eq!(tuner.count_range(9, 5), 0);
        assert_eq!(tuner.count_range(0, 10), 3);
    }

    #[test]
    fn selectivity_estimator_reasonable() {
        let keys: Vec<Key> = (0..100_000).collect();
        let est = estimate_selectivity(&keys, 0, 10_000);
        assert!((est - 0.1).abs() < 0.05, "estimate {est}");
        assert_eq!(estimate_selectivity(&[], 0, 10), 0.0);
        assert_eq!(estimate_selectivity(&keys, 10, 10), 0.0);
    }
}
