//! The shared logical cost model.
//!
//! The benchmark harnesses compare techniques by *machine-independent work
//! units* (elements touched, comparisons charged) in addition to wall-clock
//! time, following the spirit of the TPCTC 2010 adaptive-indexing benchmark:
//! what matters is how much work each query performs on top of producing its
//! answer, and how that overhead decays over the query sequence.

/// Work-unit counters shared by the baseline indexes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Number of queries answered.
    pub queries: u64,
    /// Elements read by full scans.
    pub elements_scanned: u64,
    /// Comparison work charged for sorting (n log n accounting).
    pub sort_comparisons: u64,
    /// Binary-search probes into sorted structures.
    pub index_probes: u64,
    /// Elements copied while building index structures.
    pub elements_copied: u64,
}

impl BaselineStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a query.
    pub fn record_query(&mut self) {
        self.queries += 1;
    }

    /// Record scanning `n` elements.
    pub fn record_scan(&mut self, n: usize) {
        self.elements_scanned += n as u64;
    }

    /// Record sorting `n` elements.
    pub fn record_sort(&mut self, n: usize) {
        let log = (n.max(2) as f64).log2().ceil() as u64;
        self.sort_comparisons += n as u64 * log;
    }

    /// Record a binary-search probe over `n` elements.
    pub fn record_probe(&mut self, n: usize) {
        self.index_probes += (n.max(2) as f64).log2().ceil() as u64;
    }

    /// Record copying `n` elements.
    pub fn record_copy(&mut self, n: usize) {
        self.elements_copied += n as u64;
    }

    /// Total machine-independent effort, comparable with the adaptive
    /// techniques' `total_effort`.
    pub fn total_effort(&self) -> u64 {
        self.elements_scanned + self.sort_comparisons + self.index_probes + self.elements_copied
    }
}

/// The cost model used by the offline and online advisors to estimate the
/// benefit of building an index before actually building it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of reading one element during a scan (work units).
    pub scan_cost_per_element: f64,
    /// Cost of one comparison during index construction.
    pub sort_cost_per_comparison: f64,
    /// Cost of one element of output (result materialization).
    pub output_cost_per_element: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_cost_per_element: 1.0,
            sort_cost_per_comparison: 1.0,
            output_cost_per_element: 1.0,
        }
    }
}

impl CostModel {
    /// Estimated cost of answering one range query of selectivity
    /// `selectivity` with a full scan over `n` elements.
    pub fn scan_query_cost(&self, n: usize, selectivity: f64) -> f64 {
        self.scan_cost_per_element * n as f64
            + self.output_cost_per_element * selectivity * n as f64
    }

    /// Estimated cost of answering the same query with a sorted index: two
    /// binary-search probes plus a sequential read of the qualifying range
    /// plus result materialization.
    pub fn index_query_cost(&self, n: usize, selectivity: f64) -> f64 {
        let probe = (n.max(2) as f64).log2();
        probe
            + self.scan_cost_per_element * selectivity * n as f64
            + self.output_cost_per_element * selectivity * n as f64
    }

    /// Estimated cost of building a sorted index over `n` elements.
    pub fn index_build_cost(&self, n: usize) -> f64 {
        let log = (n.max(2) as f64).log2();
        self.sort_cost_per_comparison * n as f64 * log
    }

    /// Estimated benefit (may be negative) of having an index for one query.
    pub fn per_query_benefit(&self, n: usize, selectivity: f64) -> f64 {
        self.scan_query_cost(n, selectivity) - self.index_query_cost(n, selectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = BaselineStats::new();
        s.record_query();
        s.record_scan(100);
        s.record_sort(8);
        s.record_probe(1024);
        s.record_copy(50);
        assert_eq!(s.queries, 1);
        assert_eq!(s.elements_scanned, 100);
        assert_eq!(s.sort_comparisons, 24);
        assert_eq!(s.index_probes, 10);
        assert_eq!(s.elements_copied, 50);
        assert_eq!(s.total_effort(), 100 + 24 + 10 + 50);
    }

    #[test]
    fn cost_model_prefers_index_for_selective_queries() {
        let m = CostModel::default();
        let n = 1_000_000;
        assert!(m.per_query_benefit(n, 0.01) > 0.0);
        // build cost is amortized over many queries
        let build = m.index_build_cost(n);
        let benefit = m.per_query_benefit(n, 0.01);
        let queries_to_amortize = build / benefit;
        assert!(queries_to_amortize > 1.0 && queries_to_amortize < 100.0);
    }

    #[test]
    fn cost_model_scan_beats_index_for_full_range() {
        let m = CostModel::default();
        // selecting everything: the index saves nothing on output and only the
        // scan term differs marginally
        let benefit = m.per_query_benefit(1000, 1.0);
        assert!(benefit < m.scan_query_cost(1000, 1.0) * 0.51);
    }

    #[test]
    fn cost_model_tiny_inputs() {
        let m = CostModel::default();
        assert!(m.index_build_cost(0) >= 0.0);
        assert!(m.index_query_cost(1, 0.0) > 0.0);
        assert_eq!(m.scan_query_cost(0, 0.5), 0.0);
    }
}
