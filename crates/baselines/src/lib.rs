//! # aidx-baselines
//!
//! The non-adaptive ends of the indexing spectrum that the EDBT 2012 tutorial
//! contrasts adaptive indexing against:
//!
//! * [`scan`] — no index at all: every query scans the whole column. Zero
//!   initialization cost, zero convergence.
//! * [`sorted`] — a full, offline index (a sorted copy of the column built
//!   a priori): the best possible per-query cost, paid for by an expensive
//!   initialization that must happen before the first query and with no
//!   regard for which key ranges the workload actually needs.
//! * [`offline`] — what-if analysis: an index advisor that analyzes a sample
//!   workload and a cost model and recommends which columns to index, the
//!   paradigm behind the commercial auto-tuning tools the tutorial surveys.
//! * [`online`] — online index tuning (COLT-style): the system monitors the
//!   live workload, accumulates the estimated benefit a hypothetical index
//!   would have had, and builds the index once that benefit exceeds its
//!   construction cost.
//! * [`soft`] — soft indexes: like online tuning, but index construction
//!   piggybacks on the scan of the query that triggers it (the data is
//!   already in flight); the index is still built to completion, not
//!   incrementally.
//! * [`cost`] — the shared logical cost model (work-unit accounting) that
//!   makes all of the above comparable with the adaptive techniques.

#![warn(missing_docs)]

pub mod cost;
pub mod offline;
pub mod online;
pub mod scan;
pub mod soft;
pub mod sorted;

pub use cost::{BaselineStats, CostModel};
pub use offline::{IndexRecommendation, OfflineAdvisor, WorkloadSample};
pub use online::OnlineIndexTuner;
pub use scan::FullScanIndex;
pub use soft::SoftIndexTuner;
pub use sorted::FullSortIndex;
