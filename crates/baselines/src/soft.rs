//! Soft indexes (Lühring, Sattler, Schmidt, Schallehn — SMDB 2007).
//!
//! Soft indexes sit between online tuning and adaptive indexing: like online
//! tuning they keep explicit statistics and solve the index-selection problem
//! periodically; like adaptive indexing the index is created *during query
//! processing* — the scan that the triggering query performs anyway feeds the
//! index builder, so the build piggybacks on work already being done. Unlike
//! adaptive indexing, neither the recommendation nor the construction is
//! incremental: the index is built to completion in one go.

use crate::cost::{BaselineStats, CostModel};
use crate::sorted::FullSortIndex;
use aidx_columnstore::position::PositionList;
use aidx_columnstore::types::{Key, RowId};

/// A soft-index tuner over one key column.
#[derive(Debug, Clone)]
pub struct SoftIndexTuner {
    keys: Vec<Key>,
    index: Option<FullSortIndex>,
    cost_model: CostModel,
    /// Queries observed since the last index-selection decision.
    observed_queries: u64,
    /// Benefit accumulated from observed queries (work units).
    accumulated_benefit: f64,
    /// Every how many queries the index-selection problem is (re)solved.
    decision_period: u64,
    stats: BaselineStats,
    build_at_query: Option<u64>,
    /// Discount on the build cost because construction reuses the triggering
    /// query's scan (the data is already streaming by).
    piggyback_discount: f64,
}

impl SoftIndexTuner {
    /// Create a soft-index tuner with a decision period of `decision_period`
    /// queries and the default cost model.
    pub fn from_keys(keys: &[Key], decision_period: u64) -> Self {
        Self::from_key_iter(keys.iter().copied(), decision_period)
    }

    /// Create a soft-index tuner from a key stream (one collect, no
    /// transient contiguous copy for chunked sources).
    pub fn from_key_iter(keys: impl ExactSizeIterator<Item = Key>, decision_period: u64) -> Self {
        SoftIndexTuner {
            keys: keys.collect(),
            index: None,
            cost_model: CostModel::default(),
            observed_queries: 0,
            accumulated_benefit: 0.0,
            decision_period: decision_period.max(1),
            stats: BaselineStats::new(),
            build_at_query: None,
            piggyback_discount: 0.5,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether the index exists yet.
    pub fn index_built(&self) -> bool {
        self.index.is_some()
    }

    /// The query number (1-based) whose scan fed the index builder, if any.
    pub fn build_at_query(&self) -> Option<u64> {
        self.build_at_query
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Total effort including the built index's own counters.
    pub fn total_effort(&self) -> u64 {
        self.stats.total_effort()
            + self
                .index
                .as_ref()
                .map_or(0, |index| index.stats().total_effort())
    }

    /// Answer `[low, high)`.
    pub fn query_range(&mut self, low: Key, high: Key) -> PositionList {
        self.stats.record_query();
        if self.keys.is_empty() || low >= high {
            return PositionList::new();
        }

        if let Some(index) = &mut self.index {
            return index.query_range(low, high);
        }

        // Answer by scanning — and keep the statistics the periodic decision
        // needs.
        self.stats.record_scan(self.keys.len());
        self.observed_queries += 1;
        let mut out: Vec<RowId> = Vec::new();
        let mut matching = 0usize;
        for (i, &v) in self.keys.iter().enumerate() {
            if v >= low && v < high {
                matching += 1;
                out.push(i as RowId);
            }
        }
        let selectivity = matching as f64 / self.keys.len() as f64;
        self.accumulated_benefit += self
            .cost_model
            .per_query_benefit(self.keys.len(), selectivity);

        // Periodically solve the index-selection problem. When the answer is
        // "build", the build piggybacks on this scan: the discount reflects
        // that the data was already read.
        if self.observed_queries.is_multiple_of(self.decision_period) {
            let build_cost =
                self.cost_model.index_build_cost(self.keys.len()) * self.piggyback_discount;
            if self.accumulated_benefit >= build_cost {
                self.index = Some(FullSortIndex::from_keys(&self.keys));
                self.build_at_query = Some(self.stats.queries);
            }
        }

        PositionList::from_sorted_vec(out)
    }

    /// Count the qualifying tuples of `[low, high)`.
    pub fn count_range(&mut self, low: Key, high: Key) -> usize {
        self.query_range(low, high).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<Key> {
        (0..n as Key).map(|i| (i * 104729) % n as Key).collect()
    }

    #[test]
    fn builds_only_at_decision_points() {
        let keys = data(100_000);
        let mut tuner = SoftIndexTuner::from_keys(&keys, 10);
        let mut built_at = None;
        for q in 0..200 {
            let low = (q * 379) % 90_000;
            let _ = tuner.query_range(low, low + 500);
            if let Some(b) = tuner.build_at_query() {
                built_at = Some(b);
                break;
            }
        }
        let built_at = built_at.expect("selective workload must trigger a soft index");
        assert_eq!(built_at % 10, 0, "decisions happen every 10 queries");
        assert!(tuner.index_built());
    }

    #[test]
    fn answers_correct_before_and_after_build() {
        let keys = data(20_000);
        let mut tuner = SoftIndexTuner::from_keys(&keys, 5);
        for q in 0..60 {
            let low = (q * 331) % 18_000;
            let high = low + 400;
            let got = tuner.query_range(low, high);
            let expected = keys.iter().filter(|&&k| k >= low && k < high).count();
            assert_eq!(got.len(), expected, "query {q}");
        }
        assert!(tuner.index_built());
        assert!(tuner.total_effort() > 0);
    }

    #[test]
    fn soft_index_builds_earlier_than_plain_online_tuning() {
        // the piggyback discount halves the effective build cost, so for the
        // same workload the soft index appears at or before the online one
        let keys = data(80_000);
        let mut soft = SoftIndexTuner::from_keys(&keys, 1);
        let mut online = crate::online::OnlineIndexTuner::from_keys(&keys);
        for q in 0..300 {
            let low = (q * 157) % 70_000;
            let _ = soft.query_range(low, low + 800);
            let _ = online.query_range(low, low + 800);
        }
        let soft_at = soft.build_at_query().expect("soft builds");
        let online_at = online.build_at_query().expect("online builds");
        assert!(soft_at <= online_at, "soft {soft_at} vs online {online_at}");
    }

    #[test]
    fn unselective_workload_never_builds() {
        let keys = data(10_000);
        let mut tuner = SoftIndexTuner::from_keys(&keys, 5);
        for _ in 0..60 {
            let _ = tuner.query_range(Key::MIN, Key::MAX);
        }
        assert!(!tuner.index_built());
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut tuner = SoftIndexTuner::from_keys(&[], 5);
        assert!(tuner.is_empty());
        assert!(tuner.query_range(0, 10).is_empty());
        let mut tuner = SoftIndexTuner::from_keys(&[5, 1, 9], 5);
        assert_eq!(tuner.len(), 3);
        assert_eq!(tuner.count_range(9, 5), 0);
        assert_eq!(tuner.count_range(0, 10), 3);
    }
}
