//! Offline index selection: what-if analysis over a sample workload.
//!
//! Commercial auto-tuning tools (the tutorial cites the SQL Server Database
//! Tuning Advisor, the DB2 Design Advisor, and a line of research going back
//! to Finkelstein's 1988 work) analyze a *sample workload* against a *cost
//! model* — without executing anything — and recommend the set of indexes
//! whose estimated benefit exceeds their estimated cost, subject to a storage
//! budget. This module reproduces that paradigm for single-column range
//! indexes, which is all the adaptive-indexing comparison needs.

use crate::cost::CostModel;
use aidx_columnstore::types::Key;
use std::collections::BTreeMap;

/// One observed (or anticipated) query in the sample workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSample {
    /// The column the range predicate applies to.
    pub column: String,
    /// Inclusive lower bound.
    pub low: Key,
    /// Exclusive upper bound.
    pub high: Key,
    /// How many times this query (template) is expected to run.
    pub frequency: u64,
}

impl WorkloadSample {
    /// Convenience constructor.
    pub fn new(column: impl Into<String>, low: Key, high: Key, frequency: u64) -> Self {
        WorkloadSample {
            column: column.into(),
            low,
            high,
            frequency,
        }
    }
}

/// Description of one column considered by the advisor.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Number of rows.
    pub row_count: usize,
    /// Minimum key value.
    pub min: Key,
    /// Maximum key value.
    pub max: Key,
}

/// The advisor's verdict for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRecommendation {
    /// Column the recommendation applies to.
    pub column: String,
    /// Whether building a full index is estimated to pay off.
    pub build_index: bool,
    /// Estimated total benefit over the sample workload (work units).
    pub estimated_benefit: f64,
    /// Estimated index construction cost (work units).
    pub estimated_build_cost: f64,
    /// Estimated storage footprint of the index in bytes.
    pub estimated_bytes: usize,
}

impl IndexRecommendation {
    /// Net gain of following the recommendation.
    pub fn net_gain(&self) -> f64 {
        self.estimated_benefit - self.estimated_build_cost
    }
}

/// A what-if index advisor.
#[derive(Debug, Clone, Default)]
pub struct OfflineAdvisor {
    columns: BTreeMap<String, ColumnProfile>,
    cost_model: CostModel,
}

impl OfflineAdvisor {
    /// Create an advisor with the default cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an advisor with a custom cost model.
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        OfflineAdvisor {
            columns: BTreeMap::new(),
            cost_model,
        }
    }

    /// Register a column the advisor may recommend indexes for.
    pub fn register_column(&mut self, profile: ColumnProfile) {
        self.columns.insert(profile.name.clone(), profile);
    }

    /// Register a column from its raw keys.
    pub fn register_keys(&mut self, name: impl Into<String>, keys: &[Key]) {
        let name = name.into();
        self.columns.insert(
            name.clone(),
            ColumnProfile {
                name,
                row_count: keys.len(),
                min: keys.iter().copied().min().unwrap_or(0),
                max: keys.iter().copied().max().unwrap_or(0),
            },
        );
    }

    /// Number of registered columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Run the what-if analysis: for every registered column, estimate the
    /// workload cost with and without a full index and recommend the index
    /// when it pays off within the sample workload. Recommendations are
    /// returned for every registered column (including negative ones), sorted
    /// by descending net gain; `storage_budget_bytes` caps how many positive
    /// recommendations are marked `build_index`.
    pub fn analyze(
        &self,
        workload: &[WorkloadSample],
        storage_budget_bytes: usize,
    ) -> Vec<IndexRecommendation> {
        let mut recommendations = Vec::with_capacity(self.columns.len());
        for profile in self.columns.values() {
            let span = (profile.max - profile.min).max(1) as f64 + 1.0;
            let mut benefit = 0.0;
            for sample in workload.iter().filter(|s| s.column == profile.name) {
                let overlap =
                    (sample.high.min(profile.max + 1) - sample.low.max(profile.min)).max(0) as f64;
                let selectivity = (overlap / span).clamp(0.0, 1.0);
                benefit += sample.frequency as f64
                    * self
                        .cost_model
                        .per_query_benefit(profile.row_count, selectivity);
            }
            let build_cost = self.cost_model.index_build_cost(profile.row_count);
            recommendations.push(IndexRecommendation {
                column: profile.name.clone(),
                build_index: false,
                estimated_benefit: benefit,
                estimated_build_cost: build_cost,
                estimated_bytes: profile.row_count * 12,
            });
        }
        recommendations.sort_by(|a, b| {
            b.net_gain()
                .partial_cmp(&a.net_gain())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut remaining_budget = storage_budget_bytes;
        for recommendation in &mut recommendations {
            if recommendation.net_gain() > 0.0 && recommendation.estimated_bytes <= remaining_budget
            {
                recommendation.build_index = true;
                remaining_budget -= recommendation.estimated_bytes;
            }
        }
        recommendations
    }

    /// The columns the advisor would actually index, given the workload and
    /// budget (convenience wrapper around [`Self::analyze`]).
    pub fn recommended_columns(
        &self,
        workload: &[WorkloadSample],
        storage_budget_bytes: usize,
    ) -> Vec<String> {
        self.analyze(workload, storage_budget_bytes)
            .into_iter()
            .filter(|r| r.build_index)
            .map(|r| r.column)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advisor_with_two_columns() -> OfflineAdvisor {
        let mut advisor = OfflineAdvisor::new();
        let keys_a: Vec<Key> = (0..100_000).collect();
        let keys_b: Vec<Key> = (0..100_000).collect();
        advisor.register_keys("hot", &keys_a);
        advisor.register_keys("cold", &keys_b);
        advisor
    }

    #[test]
    fn frequently_queried_column_gets_an_index() {
        let advisor = advisor_with_two_columns();
        let workload = vec![
            WorkloadSample::new("hot", 1000, 2000, 500),
            WorkloadSample::new("cold", 1000, 2000, 1),
        ];
        let recommended = advisor.recommended_columns(&workload, usize::MAX);
        assert!(recommended.contains(&"hot".to_owned()));
        assert!(!recommended.contains(&"cold".to_owned()));
    }

    #[test]
    fn unqueried_columns_are_never_recommended() {
        let advisor = advisor_with_two_columns();
        let workload = vec![WorkloadSample::new("hot", 0, 10_000, 100)];
        let analysis = advisor.analyze(&workload, usize::MAX);
        assert_eq!(analysis.len(), 2);
        let cold = analysis.iter().find(|r| r.column == "cold").unwrap();
        assert!(!cold.build_index);
        assert_eq!(cold.estimated_benefit, 0.0);
        assert!(cold.net_gain() < 0.0);
    }

    #[test]
    fn storage_budget_limits_recommendations() {
        let advisor = advisor_with_two_columns();
        let workload = vec![
            WorkloadSample::new("hot", 1000, 2000, 500),
            WorkloadSample::new("cold", 5000, 6000, 400),
        ];
        // budget fits only one 100k-row index (12 bytes per entry)
        let recommended = advisor.recommended_columns(&workload, 100_000 * 12);
        assert_eq!(recommended.len(), 1);
        assert_eq!(
            recommended[0], "hot",
            "higher-benefit column wins the budget"
        );
        let unlimited = advisor.recommended_columns(&workload, usize::MAX);
        assert_eq!(unlimited.len(), 2);
    }

    #[test]
    fn recommendations_sorted_by_net_gain() {
        let advisor = advisor_with_two_columns();
        let workload = vec![
            WorkloadSample::new("hot", 1000, 2000, 500),
            WorkloadSample::new("cold", 5000, 6000, 50),
        ];
        let analysis = advisor.analyze(&workload, usize::MAX);
        assert!(analysis[0].net_gain() >= analysis[1].net_gain());
        assert_eq!(analysis[0].column, "hot");
    }

    #[test]
    fn register_column_profile_directly() {
        let mut advisor = OfflineAdvisor::with_cost_model(CostModel::default());
        advisor.register_column(ColumnProfile {
            name: "x".into(),
            row_count: 10,
            min: 0,
            max: 9,
        });
        assert_eq!(advisor.column_count(), 1);
        // tiny column: scanning is fine, no index recommended
        let workload = vec![WorkloadSample::new("x", 0, 5, 1000)];
        let rec = advisor.analyze(&workload, usize::MAX);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn empty_workload_produces_no_positive_recommendations() {
        let advisor = advisor_with_two_columns();
        assert!(advisor.recommended_columns(&[], usize::MAX).is_empty());
    }
}
