//! The full-index baseline: a sorted copy of the column, built up front.

use crate::cost::BaselineStats;
use aidx_columnstore::column::Column;
use aidx_columnstore::position::PositionList;
use aidx_columnstore::types::{Key, RowId};

/// A fully sorted (offline-built) index over one key column.
///
/// This is the other endpoint of the spectrum: the per-query cost is optimal
/// from the very first query, but the whole column is sorted before any query
/// runs — regardless of whether the workload will ever touch most of it.
#[derive(Debug, Clone)]
pub struct FullSortIndex {
    keys: Vec<Key>,
    rowids: Vec<RowId>,
    stats: BaselineStats,
}

impl FullSortIndex {
    /// Build the index by sorting a copy of `keys`. The sort cost is charged
    /// to the statistics immediately.
    pub fn from_keys(keys: &[Key]) -> Self {
        Self::from_key_iter(keys.iter().copied())
    }

    /// Build by streaming keys into the pair array to sort (no transient
    /// contiguous copy when the source is a chunked segment).
    pub fn from_key_iter(keys: impl ExactSizeIterator<Item = Key>) -> Self {
        let mut stats = BaselineStats::new();
        stats.record_copy(keys.len());
        stats.record_sort(keys.len());
        let mut pairs: Vec<(Key, RowId)> = keys.enumerate().map(|(i, k)| (k, i as RowId)).collect();
        pairs.sort_unstable();
        FullSortIndex {
            keys: pairs.iter().map(|&(k, _)| k).collect(),
            rowids: pairs.iter().map(|&(_, r)| r).collect(),
            stats,
        }
    }

    /// Build from an `Int64` column.
    pub fn from_column(column: &Column) -> Self {
        match column.as_i64() {
            Some(c) => Self::from_keys(&c.to_contiguous()),
            None => Self::from_keys(&[]),
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Accumulated work counters (includes the up-front sort).
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// The sorted keys (useful for verification).
    pub fn sorted_keys(&self) -> &[Key] {
        &self.keys
    }

    /// Answer `[low, high)` with two binary searches; the qualifying keys are
    /// contiguous in the sorted array.
    pub fn query_range(&mut self, low: Key, high: Key) -> PositionList {
        self.stats.record_query();
        if low >= high || self.keys.is_empty() {
            return PositionList::new();
        }
        self.stats.record_probe(self.keys.len());
        self.stats.record_probe(self.keys.len());
        let begin = self.keys.partition_point(|&k| k < low);
        let end = self.keys.partition_point(|&k| k < high);
        self.stats.record_scan(end - begin);
        PositionList::from_vec(self.rowids[begin..end].to_vec())
    }

    /// Count the qualifying tuples of `[low, high)` without materializing
    /// positions.
    pub fn count_range(&mut self, low: Key, high: Key) -> usize {
        self.stats.record_query();
        if low >= high || self.keys.is_empty() {
            return 0;
        }
        self.stats.record_probe(self.keys.len());
        self.stats.record_probe(self.keys.len());
        let begin = self.keys.partition_point(|&k| k < low);
        let end = self.keys.partition_point(|&k| k < high);
        end - begin
    }

    /// The qualifying keys of `[low, high)` in sorted order.
    pub fn keys_range(&mut self, low: Key, high: Key) -> &[Key] {
        self.stats.record_query();
        if low >= high || self.keys.is_empty() {
            return &[];
        }
        self.stats.record_probe(self.keys.len());
        self.stats.record_probe(self.keys.len());
        let begin = self.keys.partition_point(|&k| k < low);
        let end = self.keys.partition_point(|&k| k < high);
        self.stats.record_scan(end - begin);
        &self.keys[begin..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_charges_sort_cost_up_front() {
        let data: Vec<Key> = (0..1024).rev().collect();
        let idx = FullSortIndex::from_keys(&data);
        assert_eq!(idx.len(), 1024);
        assert!(idx.stats().sort_comparisons >= 1024 * 10);
        assert_eq!(idx.stats().elements_copied, 1024);
        assert!(idx.sorted_keys().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn queries_are_cheap_and_correct() {
        let data: Vec<Key> = (0..10_000).map(|i| (i * 7919) % 10_000).collect();
        let mut idx = FullSortIndex::from_keys(&data);
        let effort_after_build = idx.stats().total_effort();
        let p = idx.query_range(100, 200);
        assert_eq!(p.len(), 100);
        // row ids point back at the base data
        for &r in p.as_slice() {
            assert!((100..200).contains(&data[r as usize]));
        }
        let per_query_effort = idx.stats().total_effort() - effort_after_build;
        assert!(per_query_effort < 200, "index lookups are cheap");
        assert_eq!(idx.count_range(100, 200), 100);
        assert_eq!(idx.keys_range(100, 105), &[100, 101, 102, 103, 104]);
    }

    #[test]
    fn empty_and_degenerate_queries() {
        let mut idx = FullSortIndex::from_keys(&[]);
        assert!(idx.is_empty());
        assert!(idx.query_range(0, 10).is_empty());
        assert_eq!(idx.count_range(0, 10), 0);
        assert!(idx.keys_range(0, 10).is_empty());
        let mut idx = FullSortIndex::from_keys(&[5, 1, 9]);
        assert_eq!(idx.count_range(9, 5), 0);
        assert_eq!(idx.count_range(0, 100), 3);
    }

    #[test]
    fn duplicates_counted_correctly() {
        let mut idx = FullSortIndex::from_keys(&[5, 5, 5, 1, 9]);
        assert_eq!(idx.count_range(5, 6), 3);
        assert_eq!(idx.query_range(5, 6).len(), 3);
    }

    #[test]
    fn from_column_dispatch() {
        let c = Column::from_i64(vec![3, 1, 2]);
        let mut idx = FullSortIndex::from_column(&c);
        assert_eq!(idx.count_range(2, 4), 2);
        let f = Column::from_f64(vec![1.0]);
        assert!(FullSortIndex::from_column(&f).is_empty());
    }
}
