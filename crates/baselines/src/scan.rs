//! The no-index baseline: answer every query with a full scan.

use crate::cost::BaselineStats;
use aidx_columnstore::column::Column;
use aidx_columnstore::ops::select::Predicate;
use aidx_columnstore::position::PositionList;
use aidx_columnstore::types::{Key, RowId};

/// A "index" that never builds anything: each range query scans the column.
///
/// This is one endpoint of the tutorial's spectrum: the first query is as
/// cheap as possible (no initialization at all) and the thousandth query is
/// exactly as expensive as the first (no convergence at all).
#[derive(Debug, Clone)]
pub struct FullScanIndex {
    keys: Vec<Key>,
    stats: BaselineStats,
}

impl FullScanIndex {
    /// Wrap a dense key slice.
    pub fn from_keys(keys: &[Key]) -> Self {
        Self::from_key_iter(keys.iter().copied())
    }

    /// Wrap a key stream (one collect, no transient contiguous copy when
    /// the source is a chunked segment).
    pub fn from_key_iter(keys: impl ExactSizeIterator<Item = Key>) -> Self {
        FullScanIndex {
            keys: keys.collect(),
            stats: BaselineStats::new(),
        }
    }

    /// Wrap an `Int64` column.
    pub fn from_column(column: &Column) -> Self {
        match column.as_i64() {
            Some(c) => Self::from_keys(&c.to_contiguous()),
            None => Self::from_keys(&[]),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> &BaselineStats {
        &self.stats
    }

    /// Answer `[low, high)` by scanning everything.
    pub fn query_range(&mut self, low: Key, high: Key) -> PositionList {
        self.query(&Predicate::range(low, high))
    }

    /// Answer an arbitrary predicate by scanning everything.
    pub fn query(&mut self, predicate: &Predicate) -> PositionList {
        self.stats.record_query();
        self.stats.record_scan(self.keys.len());
        let mut out: Vec<RowId> = Vec::new();
        for (i, &v) in self.keys.iter().enumerate() {
            if predicate.matches(v) {
                out.push(i as RowId);
            }
        }
        PositionList::from_sorted_vec(out)
    }

    /// Count the qualifying tuples of `[low, high)`.
    pub fn count_range(&mut self, low: Key, high: Key) -> usize {
        self.query_range(low, high).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_answers_and_charges_full_cost_every_time() {
        let data: Vec<Key> = (0..1000).rev().collect();
        let mut idx = FullScanIndex::from_keys(&data);
        assert_eq!(idx.len(), 1000);
        let p = idx.query_range(100, 200);
        assert_eq!(p.len(), 100);
        assert_eq!(idx.stats().elements_scanned, 1000);
        let _ = idx.query_range(100, 200);
        assert_eq!(idx.stats().elements_scanned, 2000, "no learning effect");
        assert_eq!(idx.stats().queries, 2);
    }

    #[test]
    fn scan_predicates_and_empty_input() {
        let mut idx = FullScanIndex::from_keys(&[]);
        assert!(idx.is_empty());
        assert!(idx.query_range(0, 10).is_empty());
        let mut idx = FullScanIndex::from_keys(&[5, 1, 9]);
        assert_eq!(idx.query(&Predicate::equals(9)).len(), 1);
        assert_eq!(idx.count_range(0, 10), 3);
        assert_eq!(idx.count_range(10, 0), 0);
    }

    #[test]
    fn from_column_dispatch() {
        let c = Column::from_i64(vec![3, 1, 2]);
        let mut idx = FullScanIndex::from_column(&c);
        assert_eq!(idx.count_range(2, 4), 2);
        let f = Column::from_f64(vec![1.0]);
        assert!(FullScanIndex::from_column(&f).is_empty());
    }

    #[test]
    fn positions_are_base_positions() {
        let data = vec![40, 10, 30, 20];
        let mut idx = FullScanIndex::from_keys(&data);
        let p = idx.query_range(15, 35);
        assert_eq!(p.as_slice(), &[2, 3]);
    }
}
