//! The append-only log: writing, group commit, rotation, truncation, and the
//! total (panic-free) reader.
//!
//! A log directory holds files named `wal-<first_lsn>.log`, each an
//! unbroken run of frames whose LSNs start at `first_lsn`. Appends go to the
//! file with the highest `first_lsn`; after a checkpoint the writer rotates
//! to a fresh file and deletes every sealed file that ends at or before the
//! checkpoint LSN, so truncation never rewrites bytes — it only unlinks
//! whole files.
//!
//! ## Group commit
//!
//! [`Wal::append`] writes the frame and assigns the LSN under a short inner
//! lock, then returns *without* syncing. Callers that need durability call
//! [`Wal::sync_to`] **after** releasing whatever engine lock they hold.
//! `sync_to` is absorbing: if another thread's fsync already covered the
//! requested LSN, it returns immediately. Under concurrent writers this
//! collapses many logical syncs into one physical fsync without any of them
//! serializing the engine's catalog lock around the disk.

use crate::config::FsyncPolicy;
use crate::error::{WalError, WalResult};
use crate::record::{decode_frame, encode_frame, WalRecord};
use aidx_telemetry::{Histogram, Registry};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const LOG_PREFIX: &str = "wal-";
const LOG_SUFFIX: &str = ".log";

fn log_file_name(first_lsn: u64) -> String {
    // zero-padded so lexicographic order is numeric order
    format!("{LOG_PREFIX}{first_lsn:020}{LOG_SUFFIX}")
}

fn parse_log_file_name(name: &str) -> Option<u64> {
    name.strip_prefix(LOG_PREFIX)?
        .strip_suffix(LOG_SUFFIX)?
        .parse()
        .ok()
}

/// Sorted `(first_lsn, path)` list of the log files in `dir`.
fn list_log_files(dir: &Path) -> WalResult<Vec<(u64, PathBuf)>> {
    let mut files = Vec::new();
    let entries = fs::read_dir(dir)
        .map_err(|e| WalError::io(format!("read log directory {}", dir.display()), &e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| WalError::io(format!("read log directory {}", dir.display()), &e))?;
        let name = entry.file_name();
        if let Some(first_lsn) = name.to_str().and_then(parse_log_file_name) {
            files.push((first_lsn, entry.path()));
        }
    }
    files.sort();
    Ok(files)
}

fn fsync_dir(dir: &Path) {
    // Directory fsync makes renames/creates durable on POSIX; treat failure
    // as best-effort (some filesystems reject it) — the data files
    // themselves are synced separately.
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// The result of scanning a log directory: every valid record past
/// `from_lsn`, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct LogReplay {
    /// Replayable `(lsn, record)` pairs in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// Highest valid LSN seen anywhere in the log (including records at or
    /// below `from_lsn`); `None` for an empty log.
    pub last_lsn: Option<u64>,
    /// Bytes of torn or corrupt tail that were ignored, if any, with the
    /// file they were found in. Corruption anywhere *before* the tail of
    /// the newest file is an error instead — it means acknowledged history
    /// is unreadable.
    pub truncated_tail: Option<(PathBuf, u64)>,
}

/// Read every record with `lsn > from_lsn` from the log directory `dir`.
///
/// Total over arbitrary directory contents: a torn or corrupt tail of the
/// *newest* file reads as a clean end-of-log (reported in
/// [`LogReplay::truncated_tail`]), because a crash can only tear the last
/// write. The same damage in an older, sealed file is a hard
/// [`WalError::Corrupt`] — that history was acknowledged and is gone.
pub fn read_log(dir: &Path, from_lsn: u64) -> WalResult<LogReplay> {
    let files = list_log_files(dir)?;
    let mut replay = LogReplay {
        records: Vec::new(),
        last_lsn: None,
        truncated_tail: None,
    };
    let last_index = files.len().saturating_sub(1);
    for (index, (first_lsn, path)) in files.iter().enumerate() {
        let bytes = fs::read(path)
            .map_err(|e| WalError::io(format!("read log file {}", path.display()), &e))?;
        let mut offset = 0usize;
        let mut expected = *first_lsn;
        while offset < bytes.len() {
            let verdict = decode_frame(&bytes[offset..]);
            let tail_of_newest = index == last_index;
            match verdict {
                Ok(Some((record, lsn, consumed))) => {
                    if lsn != expected {
                        return Err(WalError::corrupt(
                            offset as u64,
                            format!(
                                "lsn gap in {}: expected {expected}, found {lsn}",
                                path.display()
                            ),
                        ));
                    }
                    expected = lsn + 1;
                    replay.last_lsn = Some(lsn);
                    if lsn > from_lsn {
                        replay.records.push((lsn, record));
                    }
                    offset += consumed;
                }
                Ok(None) => {
                    // incomplete frame at the end of the buffer
                    if tail_of_newest {
                        replay.truncated_tail = Some((path.clone(), (bytes.len() - offset) as u64));
                        break;
                    }
                    return Err(WalError::corrupt(
                        offset as u64,
                        format!("torn frame inside sealed log file {}", path.display()),
                    ));
                }
                Err(WalError::Corrupt { offset: at, reason }) => {
                    if tail_of_newest {
                        // A corrupt frame in the active file's tail is a torn
                        // write (e.g. length landed but payload didn't):
                        // everything from here on is discarded.
                        replay.truncated_tail = Some((path.clone(), (bytes.len() - offset) as u64));
                        break;
                    }
                    return Err(WalError::corrupt(
                        offset as u64 + at,
                        format!("in sealed log file {}: {reason}", path.display()),
                    ));
                }
                Err(other) => return Err(other),
            }
        }
    }
    Ok(replay)
}

/// Counters describing the work a [`Wal`] has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStatsSnapshot {
    /// Records appended (a batch is one record).
    pub records_appended: u64,
    /// Rows covered by appended `Append` records.
    pub rows_appended: u64,
    /// Physical fsyncs performed.
    pub fsyncs: u64,
    /// Logical sync requests absorbed by another thread's fsync.
    pub fsyncs_absorbed: u64,
    /// File rotations (one per checkpoint).
    pub rotations: u64,
}

struct WalInner {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    /// appends since the last sync decision (for `EveryN`)
    appends_since_sync: u32,
    /// rows since the last sync decision (for `OnSeal`)
    rows_since_sync: u64,
}

struct Stats {
    records_appended: AtomicU64,
    rows_appended: AtomicU64,
    fsyncs: AtomicU64,
    fsyncs_absorbed: AtomicU64,
    rotations: AtomicU64,
}

/// Latency instruments the log records into when the engine attaches its
/// telemetry registry: append (buffered write + LSN assignment), physical
/// fsync, and absorbed sync (a logical sync another thread's fsync covered
/// — the group-commit win, measured as the wait it actually cost).
#[derive(Debug, Clone)]
pub struct WalTelemetry {
    /// Shared master switch; one relaxed load per append when attached.
    enabled: Arc<AtomicBool>,
    append_ns: Arc<Histogram>,
    fsync_ns: Arc<Histogram>,
    absorbed_sync_ns: Arc<Histogram>,
}

impl WalTelemetry {
    /// Register the WAL's instruments on `registry`. `enabled` is shared
    /// with the engine's master telemetry switch, so flipping telemetry off
    /// stops the WAL's clocks too.
    pub fn register(registry: &Registry, enabled: Arc<AtomicBool>) -> Self {
        WalTelemetry {
            enabled,
            append_ns: registry.histogram("wal.append_ns"),
            fsync_ns: registry.histogram("wal.fsync_ns"),
            absorbed_sync_ns: registry.histogram("wal.absorbed_sync_ns"),
        }
    }

    fn clock(&self) -> Option<Instant> {
        self.enabled.load(Ordering::Relaxed).then(Instant::now)
    }
}

/// The write-ahead log writer.
///
/// Thread-safe: appends serialize on a short internal lock; fsyncs happen on
/// a separate lock so a slow disk never blocks the append path longer than a
/// buffered write.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    /// `OnSeal` threshold: sync when this many rows accumulate unsynced.
    seal_rows: u64,
    inner: Mutex<WalInner>,
    /// Highest LSN written to the OS (buffered, not necessarily durable).
    last_written_lsn: AtomicU64,
    /// Highest LSN known durable. `sync_to` compares against this first.
    synced_lsn: AtomicU64,
    /// Held only while fsyncing; a clone of the active file handle.
    sync_file: Mutex<File>,
    stats: Stats,
    /// Latency instruments, when the engine attached its registry.
    telemetry: Option<WalTelemetry>,
}

/// `u64` sentinel for "no LSN yet" in the atomics (LSNs start at 1).
const NO_LSN: u64 = 0;

impl Wal {
    /// Open (or create) the log in `dir`.
    ///
    /// Scans existing files to find the next LSN; if the newest file has a
    /// torn tail the file is truncated to its last valid frame so the next
    /// append starts on a clean boundary.
    ///
    /// `seal_rows` is the `OnSeal` sync threshold, normally the engine's
    /// segment capacity.
    pub fn open(dir: &Path, policy: FsyncPolicy, seal_rows: u64) -> WalResult<Self> {
        fs::create_dir_all(dir)
            .map_err(|e| WalError::io(format!("create log directory {}", dir.display()), &e))?;
        let replay = read_log(dir, u64::MAX)?;
        let next_lsn = replay.last_lsn.map_or(1, |lsn| lsn + 1);
        if let Some((path, torn_bytes)) = &replay.truncated_tail {
            let len = fs::metadata(path)
                .map_err(|e| WalError::io(format!("stat log file {}", path.display()), &e))?
                .len();
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| WalError::io(format!("open log file {}", path.display()), &e))?;
            file.set_len(len - torn_bytes).map_err(|e| {
                WalError::io(format!("truncate torn tail of {}", path.display()), &e)
            })?;
            file.sync_all()
                .map_err(|e| WalError::io(format!("sync log file {}", path.display()), &e))?;
        }
        let files = list_log_files(dir)?;
        let path = match files.last() {
            // resume the newest file only if its LSN run reaches next_lsn
            // (it always does after tail truncation above)
            Some((_, path)) => path.clone(),
            None => dir.join(log_file_name(next_lsn)),
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| WalError::io(format!("open log file {}", path.display()), &e))?;
        if files.is_empty() {
            fsync_dir(dir);
        }
        let sync_file = file
            .try_clone()
            .map_err(|e| WalError::io(format!("clone handle for {}", path.display()), &e))?;
        let last = next_lsn - 1;
        Ok(Wal {
            dir: dir.to_path_buf(),
            policy,
            seal_rows: seal_rows.max(1),
            inner: Mutex::new(WalInner {
                file,
                path,
                next_lsn,
                appends_since_sync: 0,
                rows_since_sync: 0,
            }),
            // everything already on disk at open is considered durable
            last_written_lsn: AtomicU64::new(if last == 0 { NO_LSN } else { last }),
            synced_lsn: AtomicU64::new(if last == 0 { NO_LSN } else { last }),
            sync_file: Mutex::new(sync_file),
            stats: Stats {
                records_appended: AtomicU64::new(0),
                rows_appended: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                fsyncs_absorbed: AtomicU64::new(0),
                rotations: AtomicU64::new(0),
            },
            telemetry: None,
        })
    }

    /// Attach latency instruments (see [`WalTelemetry`]). Called once by
    /// the engine right after opening the log, before any concurrent use.
    pub fn set_telemetry(&mut self, telemetry: WalTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Append one record, returning `(lsn, lsn_to_sync)`.
    ///
    /// The record is written (buffered) to the OS before this returns, so a
    /// caller that applies the change to memory afterwards preserves
    /// write-ahead ordering. `lsn_to_sync` is `Some(lsn)` when the fsync
    /// policy wants durability now — the caller should pass it to
    /// [`Wal::sync_to`] *after* releasing its own locks.
    pub fn append(&self, record: &WalRecord) -> WalResult<(u64, Option<u64>)> {
        let clock = self.telemetry.as_ref().and_then(WalTelemetry::clock);
        let rows = match record {
            WalRecord::Append { rows, .. } => rows.len() as u64,
            _ => 0,
        };
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        let lsn = inner.next_lsn;
        let frame = encode_frame(record, lsn);
        inner
            .file
            .write_all(&frame)
            .map_err(|e| WalError::io(format!("append to {}", inner.path.display()), &e))?;
        inner.next_lsn = lsn + 1;
        inner.appends_since_sync += 1;
        inner.rows_since_sync += rows.max(1);
        let wants_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => inner.appends_since_sync >= n,
            FsyncPolicy::OnSeal => inner.rows_since_sync >= self.seal_rows,
        };
        if wants_sync {
            inner.appends_since_sync = 0;
            inner.rows_since_sync = 0;
        }
        drop(inner);
        self.last_written_lsn.store(lsn, Ordering::Release);
        self.stats.records_appended.fetch_add(1, Ordering::Relaxed);
        self.stats.rows_appended.fetch_add(rows, Ordering::Relaxed);
        if let (Some(t), Some(started)) = (&self.telemetry, clock) {
            t.append_ns.record_duration(started.elapsed());
        }
        Ok((lsn, wants_sync.then_some(lsn)))
    }

    /// Make everything up to `lsn` durable. Absorbing: returns without an
    /// fsync if a concurrent call already covered `lsn` (group commit).
    pub fn sync_to(&self, lsn: u64) -> WalResult<()> {
        let clock = self.telemetry.as_ref().and_then(WalTelemetry::clock);
        if self.synced_lsn.load(Ordering::Acquire) >= lsn {
            self.stats.fsyncs_absorbed.fetch_add(1, Ordering::Relaxed);
            if let (Some(t), Some(started)) = (&self.telemetry, clock) {
                t.absorbed_sync_ns.record_duration(started.elapsed());
            }
            return Ok(());
        }
        let file = self.sync_file.lock().expect("wal sync lock poisoned");
        // re-check: the previous holder may have covered us while we waited
        if self.synced_lsn.load(Ordering::Acquire) >= lsn {
            self.stats.fsyncs_absorbed.fetch_add(1, Ordering::Relaxed);
            if let (Some(t), Some(started)) = (&self.telemetry, clock) {
                t.absorbed_sync_ns.record_duration(started.elapsed());
            }
            return Ok(());
        }
        // everything written before this fsync becomes durable with it
        let covered = self.last_written_lsn.load(Ordering::Acquire);
        file.sync_data()
            .map_err(|e| WalError::io("fsync log", &e))?;
        self.synced_lsn.fetch_max(covered, Ordering::AcqRel);
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let (Some(t), Some(started)) = (&self.telemetry, clock) {
            t.fsync_ns.record_duration(started.elapsed());
        }
        Ok(())
    }

    /// Make every appended record durable (used before a checkpoint and on
    /// clean shutdown).
    pub fn sync(&self) -> WalResult<()> {
        let last = self.last_written_lsn.load(Ordering::Acquire);
        if last == NO_LSN {
            return Ok(());
        }
        self.sync_to(last)
    }

    /// The LSN of the most recently appended record (`None` if the log is
    /// empty and nothing has been appended).
    pub fn last_lsn(&self) -> Option<u64> {
        match self.last_written_lsn.load(Ordering::Acquire) {
            NO_LSN => None,
            lsn => Some(lsn),
        }
    }

    /// Drop log history at or below `checkpoint_lsn`: rotate to a fresh file
    /// and unlink every sealed file whose records are all covered by the
    /// checkpoint. Called after a checkpoint manifest is durable.
    pub fn truncate_through(&self, checkpoint_lsn: u64) -> WalResult<()> {
        self.sync()?;
        let mut inner = self.inner.lock().expect("wal lock poisoned");
        let mut sync_file = self.sync_file.lock().expect("wal sync lock poisoned");
        // rotate: seal the active file, start a new one at next_lsn
        let new_path = self.dir.join(log_file_name(inner.next_lsn));
        if new_path != inner.path {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&new_path)
                .map_err(|e| WalError::io(format!("open log file {}", new_path.display()), &e))?;
            let clone = file.try_clone().map_err(|e| {
                WalError::io(format!("clone handle for {}", new_path.display()), &e)
            })?;
            inner.file = file;
            inner.path = new_path;
            *sync_file = clone;
            self.stats.rotations.fetch_add(1, Ordering::Relaxed);
        }
        drop(sync_file);
        drop(inner);
        fsync_dir(&self.dir);
        // delete sealed files fully covered by the checkpoint: a file ends
        // where the next one begins
        let files = list_log_files(&self.dir)?;
        for window in files.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            if next_first > 0 && next_first - 1 <= checkpoint_lsn {
                fs::remove_file(path)
                    .map_err(|e| WalError::io(format!("remove log file {}", path.display()), &e))?;
            }
        }
        fsync_dir(&self.dir);
        Ok(())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            records_appended: self.stats.records_appended.load(Ordering::Relaxed),
            rows_appended: self.stats.rows_appended.load(Ordering::Relaxed),
            fsyncs: self.stats.fsyncs.load(Ordering::Relaxed),
            fsyncs_absorbed: self.stats.fsyncs_absorbed.load(Ordering::Relaxed),
            rotations: self.stats.rotations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aidx_columnstore::types::Value;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let path = std::env::temp_dir().join(format!(
                "aidx-wal-log-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            if !std::thread::panicking() {
                let _ = fs::remove_dir_all(&self.0);
            }
        }
    }

    fn append_record(i: i64) -> WalRecord {
        WalRecord::Append {
            table: "t".into(),
            rows: vec![vec![Value::Int64(i)]],
        }
    }

    #[test]
    fn append_read_round_trip_across_reopen() {
        let dir = TempDir::new();
        {
            let wal = Wal::open(&dir.0, FsyncPolicy::Always, 4).unwrap();
            for i in 0..10 {
                let (lsn, to_sync) = wal.append(&append_record(i)).unwrap();
                assert_eq!(lsn, i as u64 + 1);
                assert_eq!(to_sync, Some(lsn), "Always syncs every append");
                wal.sync_to(lsn).unwrap();
            }
            assert_eq!(wal.last_lsn(), Some(10));
            assert!(wal.stats().fsyncs >= 1);
        }
        let replay = read_log(&dir.0, 0).unwrap();
        assert_eq!(replay.records.len(), 10);
        assert_eq!(replay.last_lsn, Some(10));
        assert!(replay.truncated_tail.is_none());
        // from_lsn filters
        assert_eq!(read_log(&dir.0, 7).unwrap().records.len(), 3);
        // reopen continues the LSN sequence
        let wal = Wal::open(&dir.0, FsyncPolicy::Always, 4).unwrap();
        let (lsn, _) = wal.append(&append_record(10)).unwrap();
        assert_eq!(lsn, 11);
    }

    #[test]
    fn every_n_policy_requests_sync_on_schedule() {
        let dir = TempDir::new();
        let wal = Wal::open(&dir.0, FsyncPolicy::EveryN(3), 4).unwrap();
        let mut requested = Vec::new();
        for i in 0..7 {
            let (lsn, to_sync) = wal.append(&append_record(i)).unwrap();
            if let Some(sync_lsn) = to_sync {
                assert_eq!(sync_lsn, lsn);
                requested.push(lsn);
            }
        }
        assert_eq!(requested, vec![3, 6]);
    }

    #[test]
    fn on_seal_policy_counts_rows() {
        let dir = TempDir::new();
        let wal = Wal::open(&dir.0, FsyncPolicy::OnSeal, 4).unwrap();
        let batch = WalRecord::Append {
            table: "t".into(),
            rows: (0..3).map(|i| vec![Value::Int64(i)]).collect(),
        };
        let (_, first) = wal.append(&batch).unwrap();
        assert_eq!(first, None, "3 of 4 rows accumulated");
        let (lsn, second) = wal.append(&batch).unwrap();
        assert_eq!(second, Some(lsn), "6 rows crossed the 4-row seal line");
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new();
        {
            let wal = Wal::open(&dir.0, FsyncPolicy::Always, 4).unwrap();
            for i in 0..5 {
                wal.append(&append_record(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // tear the last frame
        let (_, path) = list_log_files(&dir.0).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let replay = read_log(&dir.0, 0).unwrap();
        assert_eq!(replay.records.len(), 4);
        assert!(replay.truncated_tail.is_some());
        // opening truncates and reuses LSN 5
        let wal = Wal::open(&dir.0, FsyncPolicy::Always, 4).unwrap();
        assert_eq!(wal.last_lsn(), Some(4));
        let (lsn, _) = wal.append(&append_record(99)).unwrap();
        assert_eq!(lsn, 5);
        wal.sync().unwrap();
        drop(wal);
        let replay = read_log(&dir.0, 0).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert!(replay.truncated_tail.is_none());
    }

    #[test]
    fn corrupt_tail_reads_as_clean_eof() {
        let dir = TempDir::new();
        {
            let wal = Wal::open(&dir.0, FsyncPolicy::Always, 4).unwrap();
            for i in 0..3 {
                wal.append(&append_record(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_, path) = list_log_files(&dir.0).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0xFF; // flip a bit inside the last payload
        fs::write(&path, &bytes).unwrap();
        let replay = read_log(&dir.0, 0).unwrap();
        assert_eq!(replay.records.len(), 2, "last record discarded");
        assert!(replay.truncated_tail.is_some());
    }

    #[test]
    fn truncate_through_rotates_and_unlinks() {
        let dir = TempDir::new();
        let wal = Wal::open(&dir.0, FsyncPolicy::OnSeal, 1024).unwrap();
        for i in 0..6 {
            wal.append(&append_record(i)).unwrap();
        }
        wal.truncate_through(6).unwrap();
        // old file gone, new (empty) file present
        let files = list_log_files(&dir.0).unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].0, 7);
        assert_eq!(wal.stats().rotations, 1);
        // appends continue at LSN 7 and survive reopen
        let (lsn, _) = wal.append(&append_record(6)).unwrap();
        assert_eq!(lsn, 7);
        wal.sync().unwrap();
        drop(wal);
        let replay = read_log(&dir.0, 0).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0, 7);
    }

    #[test]
    fn truncate_through_keeps_uncovered_files() {
        let dir = TempDir::new();
        let wal = Wal::open(&dir.0, FsyncPolicy::OnSeal, 1024).unwrap();
        for i in 0..4 {
            wal.append(&append_record(i)).unwrap();
        }
        // checkpoint only covered LSN 2: the first file (LSNs 1..=4) must stay
        wal.truncate_through(2).unwrap();
        let files = list_log_files(&dir.0).unwrap();
        assert_eq!(files.len(), 2, "sealed file retained, new file opened");
        let replay = read_log(&dir.0, 2).unwrap();
        assert_eq!(replay.records.len(), 2, "records 3 and 4 still replayable");
    }

    #[test]
    fn group_commit_absorbs_concurrent_syncs() {
        let dir = TempDir::new();
        let wal = std::sync::Arc::new(Wal::open(&dir.0, FsyncPolicy::Always, 4).unwrap());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let (lsn, to_sync) = wal.append(&append_record(t * 100 + i)).unwrap();
                        wal.sync_to(to_sync.unwrap_or(lsn)).unwrap();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records_appended, 100);
        drop(wal);
        let replay = read_log(&dir.0, 0).unwrap();
        assert_eq!(replay.records.len(), 100);
        assert_eq!(replay.last_lsn, Some(100));
    }
}
