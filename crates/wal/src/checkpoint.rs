//! Chunk-granular checkpoints: write-once table snapshots plus a
//! manifest-last commit protocol.
//!
//! A checkpoint is a directory `ckpt-<seq>/` holding one `t<i>.tbl` file per
//! table and a `MANIFEST` describing them. The manifest is written **last**,
//! after every table file is fsynced; a checkpoint without a complete,
//! checksum-valid manifest does not exist as far as recovery is concerned.
//! A crash at any point mid-checkpoint therefore leaves either the previous
//! checkpoint (plus a junk directory the next successful checkpoint prunes)
//! or the new one — never a half state.
//!
//! Because sealed chunks are immutable, the table files are plain dense
//! dumps: per column the sealed chunk lengths (so recovery reproduces the
//! exact chunk layout, which the maintenance subsystem's fill/slack
//! accounting depends on) followed by the values. Adaptive index state is
//! deliberately absent — cracking re-derives it from queries.

use crate::crc::crc32;
use crate::error::{WalError, WalResult};
use crate::record::{data_type_from_tag, data_type_tag, put_str, put_u32, put_u64, Reader};
use aidx_columnstore::column::{Column, Dictionary};
use aidx_columnstore::segment::Segment;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::DataType;
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST_MAGIC: &[u8; 8] = b"AIDXCKP1";
const TABLE_MAGIC: &[u8; 8] = b"AIDXTBL1";
const MANIFEST_NAME: &str = "MANIFEST";
const CKPT_PREFIX: &str = "ckpt-";

fn checkpoint_dir_name(seq: u64) -> String {
    format!("{CKPT_PREFIX}{seq:010}")
}

fn parse_checkpoint_dir_name(name: &str) -> Option<u64> {
    name.strip_prefix(CKPT_PREFIX)?.parse().ok()
}

/// One table to include in a checkpoint, captured atomically from the
/// catalog (the `Arc` is the catalog's own sealed snapshot — writing a
/// checkpoint copies no chunk data until serialization).
#[derive(Debug, Clone)]
pub struct CheckpointTable {
    /// Table name.
    pub name: String,
    /// The table's structural epoch at capture time.
    pub epoch: u64,
    /// The captured table snapshot.
    pub table: Arc<Table>,
}

/// A fully parsed, checksum-verified checkpoint.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Sequence number of the checkpoint directory.
    pub seq: u64,
    /// Every log record with `lsn <= lsn` is reflected in the tables.
    pub lsn: u64,
    /// The catalog's epoch counter at capture time; recovery bumps the
    /// fresh catalog at least this far so post-restart epochs never collide
    /// with persisted ones.
    pub next_epoch: u64,
    /// `(name, rebuilt table, epoch)` for every persisted table.
    pub tables: Vec<(String, Table, u64)>,
}

// ---------------------------------------------------------------------------
// writing

fn write_file_durably(path: &Path, bytes: &[u8]) -> WalResult<()> {
    fs::write(path, bytes).map_err(|e| WalError::io(format!("write {}", path.display()), &e))?;
    File::open(path)
        .and_then(|f| f.sync_all())
        .map_err(|e| WalError::io(format!("sync {}", path.display()), &e))?;
    Ok(())
}

fn fsync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

fn encode_segment_data<T: Copy + PartialOrd + std::fmt::Debug>(
    out: &mut Vec<u8>,
    segment: &Segment<T>,
    put: impl Fn(&mut Vec<u8>, T),
) {
    let lens = segment.sealed_chunk_lens();
    put_u32(out, lens.len() as u32);
    for len in lens {
        put_u64(out, len as u64);
    }
    for value in segment.iter() {
        put(out, value);
    }
}

fn encode_table(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(TABLE_MAGIC);
    let schema = table.schema();
    put_u32(&mut out, schema.arity() as u32);
    for field in schema.fields() {
        put_str(&mut out, field.name());
        out.push(data_type_tag(field.data_type()));
    }
    put_u64(&mut out, table.row_count() as u64);
    put_u64(&mut out, table.segment_capacity() as u64);
    for index in 0..schema.arity() {
        let column = table.column_at(index).expect("column within arity");
        match column {
            Column::Int64(segment) => {
                encode_segment_data(&mut out, segment, |b, v| put_u64(b, v as u64));
            }
            Column::Float64(segment) => {
                encode_segment_data(&mut out, segment, |b, v| put_u64(b, v.to_bits()));
            }
            Column::Utf8 { codes, dictionary } => {
                encode_segment_data(&mut out, codes, put_u32);
                put_u32(&mut out, dictionary.len() as u32);
                for code in 0..dictionary.len() as u32 {
                    put_str(&mut out, dictionary.decode(code).expect("dense codes"));
                }
            }
        }
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn encode_manifest(lsn: u64, next_epoch: u64, tables: &[(String, u64, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u64(&mut out, lsn);
    put_u64(&mut out, next_epoch);
    put_u32(&mut out, tables.len() as u32);
    for (name, epoch, file) in tables {
        put_str(&mut out, name);
        put_u64(&mut out, *epoch);
        put_str(&mut out, file);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Write checkpoint `seq` covering log records up to `lsn`.
///
/// Protocol: create `ckpt-<seq>/`, write and fsync every table file, then
/// write and fsync the manifest, then fsync the parent directory. On
/// success, prune every older checkpoint directory (complete or junk).
/// Returns the checkpoint directory path.
pub fn write_checkpoint(
    dir: &Path,
    seq: u64,
    lsn: u64,
    next_epoch: u64,
    tables: &[CheckpointTable],
) -> WalResult<PathBuf> {
    fs::create_dir_all(dir)
        .map_err(|e| WalError::io(format!("create checkpoint directory {}", dir.display()), &e))?;
    let ckpt_dir = dir.join(checkpoint_dir_name(seq));
    // a leftover directory from a crashed attempt at the same seq is junk
    if ckpt_dir.exists() {
        fs::remove_dir_all(&ckpt_dir)
            .map_err(|e| WalError::io(format!("clear stale {}", ckpt_dir.display()), &e))?;
    }
    fs::create_dir_all(&ckpt_dir)
        .map_err(|e| WalError::io(format!("create {}", ckpt_dir.display()), &e))?;
    let mut manifest_entries = Vec::with_capacity(tables.len());
    for (index, entry) in tables.iter().enumerate() {
        let file_name = format!("t{index}.tbl");
        write_file_durably(&ckpt_dir.join(&file_name), &encode_table(&entry.table))?;
        manifest_entries.push((entry.name.clone(), entry.epoch, file_name));
    }
    write_file_durably(
        &ckpt_dir.join(MANIFEST_NAME),
        &encode_manifest(lsn, next_epoch, &manifest_entries),
    )?;
    fsync_dir(&ckpt_dir);
    fsync_dir(dir);
    // the new checkpoint is durable; everything older is garbage
    for (old_seq, path) in list_checkpoint_dirs(dir)? {
        if old_seq < seq {
            fs::remove_dir_all(&path)
                .map_err(|e| WalError::io(format!("prune {}", path.display()), &e))?;
        }
    }
    Ok(ckpt_dir)
}

// ---------------------------------------------------------------------------
// reading

fn list_checkpoint_dirs(dir: &Path) -> WalResult<Vec<(u64, PathBuf)>> {
    let mut dirs = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(dirs),
        Err(e) => {
            return Err(WalError::io(
                format!("read checkpoint directory {}", dir.display()),
                &e,
            ))
        }
    };
    for entry in entries {
        let entry = entry.map_err(|e| {
            WalError::io(format!("read checkpoint directory {}", dir.display()), &e)
        })?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_checkpoint_dir_name) {
            dirs.push((seq, entry.path()));
        }
    }
    dirs.sort();
    Ok(dirs)
}

fn decode_segment_i64(
    reader: &mut Reader<'_>,
    rows: usize,
    lens: &[usize],
    capacity: usize,
    persisted_capacity: usize,
) -> WalResult<Segment<i64>> {
    let mut values = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        values.push(reader.u64("int64 cell")? as i64);
    }
    Ok(rebuild_segment(values, lens, capacity, persisted_capacity))
}

fn decode_segment_f64(
    reader: &mut Reader<'_>,
    rows: usize,
    lens: &[usize],
    capacity: usize,
    persisted_capacity: usize,
) -> WalResult<Segment<f64>> {
    let mut values = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        values.push(f64::from_bits(reader.u64("float64 cell")?));
    }
    Ok(rebuild_segment(values, lens, capacity, persisted_capacity))
}

fn decode_segment_u32(
    reader: &mut Reader<'_>,
    rows: usize,
    lens: &[usize],
    capacity: usize,
    persisted_capacity: usize,
) -> WalResult<Segment<u32>> {
    let mut values = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        values.push(reader.u32("utf8 code")?);
    }
    Ok(rebuild_segment(values, lens, capacity, persisted_capacity))
}

/// Rebuild a segment from dense values. When the target capacity matches
/// the persisted one, seal at the recorded chunk boundaries so the layout
/// (including undersized chunks awaiting compaction) survives the restart;
/// rows past the last recorded boundary stay in the mutable tail. When the
/// capacities differ (the database was reopened with a different
/// `segment_capacity`), re-chunk naturally at the new capacity.
fn rebuild_segment<T: Copy + PartialOrd + std::fmt::Debug>(
    values: Vec<T>,
    lens: &[usize],
    capacity: usize,
    persisted_capacity: usize,
) -> Segment<T> {
    let mut segment = Segment::with_chunk_capacity(capacity);
    if capacity == persisted_capacity {
        let mut offset = 0;
        for &len in lens {
            segment.extend_from_slice(&values[offset..offset + len]);
            segment.seal_tail();
            offset += len;
        }
        segment.extend_from_slice(&values[offset..]);
    } else {
        segment.extend_from_slice(&values);
    }
    segment
}

fn read_chunk_lens(
    reader: &mut Reader<'_>,
    rows: usize,
    persisted_capacity: usize,
) -> WalResult<Vec<usize>> {
    let n_sealed = reader.u32("sealed chunk count")? as usize;
    let mut lens = Vec::with_capacity(n_sealed.min(1 << 20));
    let mut total = 0usize;
    for _ in 0..n_sealed {
        let len = reader.u64("chunk length")? as usize;
        if len == 0 || len > persisted_capacity {
            return Err(WalError::corrupt(
                reader.offset(),
                format!("impossible chunk length {len} (capacity {persisted_capacity})"),
            ));
        }
        total += len;
        lens.push(len);
    }
    if total > rows {
        return Err(WalError::corrupt(
            reader.offset(),
            format!("sealed chunk lengths sum to {total} but the table has {rows} rows"),
        ));
    }
    Ok(lens)
}

fn decode_table(bytes: &[u8], target_capacity: usize) -> WalResult<Table> {
    if bytes.len() < 4 {
        return Err(WalError::corrupt(0, "table file shorter than its checksum"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != expected {
        return Err(WalError::corrupt(0, "table file checksum mismatch"));
    }
    let mut reader = Reader::new(body);
    if reader.take(8, "table magic")? != TABLE_MAGIC {
        return Err(WalError::corrupt(0, "bad table file magic"));
    }
    let arity = reader.u32("arity")? as usize;
    let mut fields = Vec::with_capacity(arity.min(1024));
    for _ in 0..arity {
        let name = reader.str("column name")?;
        let tag = reader.u8("column type")?;
        fields.push((name, data_type_from_tag(tag, reader.offset())?));
    }
    let rows = reader.u64("row count")? as usize;
    let persisted_capacity = reader.u64("segment capacity")? as usize;
    if persisted_capacity == 0 {
        return Err(WalError::corrupt(reader.offset(), "zero segment capacity"));
    }
    let mut columns = Vec::with_capacity(arity.min(1024));
    for (name, dtype) in &fields {
        let lens = read_chunk_lens(&mut reader, rows, persisted_capacity)?;
        let column = match dtype {
            DataType::Int64 => Column::Int64(decode_segment_i64(
                &mut reader,
                rows,
                &lens,
                target_capacity,
                persisted_capacity,
            )?),
            DataType::Float64 => Column::Float64(decode_segment_f64(
                &mut reader,
                rows,
                &lens,
                target_capacity,
                persisted_capacity,
            )?),
            DataType::Utf8 => {
                let codes = decode_segment_u32(
                    &mut reader,
                    rows,
                    &lens,
                    target_capacity,
                    persisted_capacity,
                )?;
                let dict_len = reader.u32("dictionary length")? as usize;
                let mut dictionary = Dictionary::new();
                for _ in 0..dict_len {
                    let value = reader.str("dictionary entry")?;
                    dictionary.intern(&value);
                }
                for code in codes.iter() {
                    if code as usize >= dictionary.len() {
                        return Err(WalError::corrupt(
                            reader.offset(),
                            format!("code {code} outside dictionary of {dict_len}"),
                        ));
                    }
                }
                Column::Utf8 {
                    codes,
                    dictionary: Arc::new(dictionary),
                }
            }
        };
        columns.push((name.as_str(), column));
    }
    if !reader.is_exhausted() {
        return Err(WalError::corrupt(
            reader.offset(),
            "trailing bytes after table body",
        ));
    }
    Table::from_columns(columns)
        .map_err(|e| WalError::corrupt(0, format!("inconsistent table file: {e}")))
}

/// A manifest's table entries: `(name, epoch, chunk-file name)`.
type ManifestEntries = Vec<(String, u64, String)>;

fn decode_manifest(bytes: &[u8]) -> WalResult<(u64, u64, ManifestEntries)> {
    if bytes.len() < 4 {
        return Err(WalError::corrupt(0, "manifest shorter than its checksum"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != expected {
        return Err(WalError::corrupt(0, "manifest checksum mismatch"));
    }
    let mut reader = Reader::new(body);
    if reader.take(8, "manifest magic")? != MANIFEST_MAGIC {
        return Err(WalError::corrupt(0, "bad manifest magic"));
    }
    let lsn = reader.u64("checkpoint lsn")?;
    let next_epoch = reader.u64("next epoch")?;
    let n_tables = reader.u32("table count")? as usize;
    let mut tables = Vec::with_capacity(n_tables.min(1 << 16));
    for _ in 0..n_tables {
        let name = reader.str("table name")?;
        let epoch = reader.u64("table epoch")?;
        let file = reader.str("table file")?;
        tables.push((name, epoch, file));
    }
    if !reader.is_exhausted() {
        return Err(WalError::corrupt(
            reader.offset(),
            "trailing bytes after manifest body",
        ));
    }
    Ok((lsn, next_epoch, tables))
}

fn try_load_checkpoint(path: &Path, seq: u64, target_capacity: usize) -> Option<LoadedCheckpoint> {
    // Any failure here — missing manifest, bad checksum, truncated table
    // file — means this directory is an incomplete checkpoint (a crash
    // mid-write): skip it and fall back to an older one. The WAL was only
    // truncated after a *successful* checkpoint, so falling back is safe.
    let manifest = fs::read(path.join(MANIFEST_NAME)).ok()?;
    let (lsn, next_epoch, entries) = decode_manifest(&manifest).ok()?;
    let mut tables = Vec::with_capacity(entries.len());
    for (name, epoch, file) in entries {
        let bytes = fs::read(path.join(&file)).ok()?;
        let table = decode_table(&bytes, target_capacity).ok()?;
        tables.push((name, table, epoch));
    }
    Some(LoadedCheckpoint {
        seq,
        lsn,
        next_epoch,
        tables,
    })
}

/// Load the newest *complete* checkpoint under `dir`, rebuilding tables at
/// `target_capacity` (layout is preserved exactly when it matches the
/// persisted capacity). Returns `Ok(None)` when no complete checkpoint
/// exists — including the fresh-directory case.
pub fn load_latest_checkpoint(
    dir: &Path,
    target_capacity: usize,
) -> WalResult<Option<LoadedCheckpoint>> {
    let mut dirs = list_checkpoint_dirs(dir)?;
    while let Some((seq, path)) = dirs.pop() {
        if let Some(loaded) = try_load_checkpoint(&path, seq, target_capacity) {
            return Ok(Some(loaded));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aidx_columnstore::table::{Field, Schema};
    use aidx_columnstore::types::Value;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let path = std::env::temp_dir().join(format!(
                "aidx-wal-ckpt-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            if !std::thread::panicking() {
                let _ = fs::remove_dir_all(&self.0);
            }
        }
    }

    fn sample_table(rows: i64, capacity: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("label", DataType::Utf8),
        ]);
        let mut table = Table::new_with_segment_capacity(schema, capacity);
        for i in 0..rows {
            table
                .append_row(&[
                    Value::Int64(i * 3 % 17),
                    Value::Float64(i as f64 / 2.0),
                    Value::Utf8(format!("label-{}", i % 5)),
                ])
                .unwrap();
        }
        table
    }

    fn rows_of(table: &Table) -> Vec<Vec<Value>> {
        (0..table.row_count())
            .map(|row| {
                (0..table.schema().arity())
                    .map(|col| table.column_at(col).unwrap().value_at(row).unwrap())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn checkpoint_round_trip_preserves_rows_layout_and_epochs() {
        let dir = TempDir::new();
        let table = sample_table(37, 8); // 4 sealed chunks + 5-row tail
        let entry = CheckpointTable {
            name: "orders".into(),
            epoch: 12,
            table: Arc::new(table.clone()),
        };
        write_checkpoint(&dir.0, 3, 99, 15, &[entry]).unwrap();
        let loaded = load_latest_checkpoint(&dir.0, 8).unwrap().unwrap();
        assert_eq!((loaded.seq, loaded.lsn, loaded.next_epoch), (3, 99, 15));
        assert_eq!(loaded.tables.len(), 1);
        let (name, rebuilt, epoch) = &loaded.tables[0];
        assert_eq!(name, "orders");
        assert_eq!(*epoch, 12);
        assert_eq!(rows_of(rebuilt), rows_of(&table));
        assert_eq!(rebuilt.segment_capacity(), 8);
        for col in 0..3 {
            assert_eq!(
                rebuilt.column_at(col).unwrap().sealed_chunk_lens(),
                table.column_at(col).unwrap().sealed_chunk_lens(),
                "column {col} chunk layout"
            );
        }
    }

    #[test]
    fn capacity_mismatch_rechunks_without_losing_rows() {
        let dir = TempDir::new();
        let table = sample_table(20, 8);
        let entry = CheckpointTable {
            name: "t".into(),
            epoch: 1,
            table: Arc::new(table.clone()),
        };
        write_checkpoint(&dir.0, 1, 5, 2, &[entry]).unwrap();
        let loaded = load_latest_checkpoint(&dir.0, 4).unwrap().unwrap();
        let (_, rebuilt, _) = &loaded.tables[0];
        assert_eq!(rows_of(rebuilt), rows_of(&table));
        assert_eq!(rebuilt.segment_capacity(), 4);
    }

    #[test]
    fn undersized_chunks_survive_the_round_trip() {
        let dir = TempDir::new();
        let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
        let mut table = Table::new_with_segment_capacity(schema, 8);
        for i in 0..3 {
            table.append_row(&[Value::Int64(i)]).unwrap();
        }
        table.seal_tails(); // one undersized 3-row chunk
        for i in 3..5 {
            table.append_row(&[Value::Int64(i)]).unwrap();
        }
        let entry = CheckpointTable {
            name: "t".into(),
            epoch: 1,
            table: Arc::new(table.clone()),
        };
        write_checkpoint(&dir.0, 1, 1, 2, &[entry]).unwrap();
        let loaded = load_latest_checkpoint(&dir.0, 8).unwrap().unwrap();
        let (_, rebuilt, _) = &loaded.tables[0];
        assert_eq!(rebuilt.column_at(0).unwrap().sealed_chunk_lens(), vec![3]);
        assert_eq!(rows_of(rebuilt), rows_of(&table));
    }

    #[test]
    fn incomplete_checkpoints_are_invisible() {
        let dir = TempDir::new();
        let table = Arc::new(sample_table(10, 8));
        let entry = CheckpointTable {
            name: "t".into(),
            epoch: 1,
            table,
        };
        write_checkpoint(&dir.0, 1, 10, 2, std::slice::from_ref(&entry)).unwrap();
        // fabricate a crashed, higher-seq attempt: table file but truncated
        // manifest
        let junk = dir.0.join(checkpoint_dir_name(2));
        fs::create_dir_all(&junk).unwrap();
        fs::write(junk.join("t0.tbl"), b"partial garbage").unwrap();
        let manifest = encode_manifest(20, 3, &[("t".into(), 1, "t0.tbl".into())]);
        fs::write(junk.join(MANIFEST_NAME), &manifest[..manifest.len() / 2]).unwrap();
        let loaded = load_latest_checkpoint(&dir.0, 8).unwrap().unwrap();
        assert_eq!(loaded.seq, 1, "fell back past the incomplete checkpoint");
        assert_eq!(loaded.lsn, 10);
        // a manifest-less directory is equally invisible
        let no_manifest = dir.0.join(checkpoint_dir_name(3));
        fs::create_dir_all(&no_manifest).unwrap();
        assert_eq!(load_latest_checkpoint(&dir.0, 8).unwrap().unwrap().seq, 1);
        // and an empty checkpoint root loads as None
        let empty = TempDir::new();
        assert!(load_latest_checkpoint(&empty.0, 8).unwrap().is_none());
    }

    #[test]
    fn newer_checkpoint_wins_and_prunes_older() {
        let dir = TempDir::new();
        let entry = |rows| CheckpointTable {
            name: "t".into(),
            epoch: 1,
            table: Arc::new(sample_table(rows, 8)),
        };
        write_checkpoint(&dir.0, 1, 10, 2, &[entry(5)]).unwrap();
        write_checkpoint(&dir.0, 2, 20, 2, &[entry(9)]).unwrap();
        let loaded = load_latest_checkpoint(&dir.0, 8).unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.tables[0].1.row_count(), 9);
        assert!(
            !dir.0.join(checkpoint_dir_name(1)).exists(),
            "older checkpoint pruned"
        );
    }

    #[test]
    fn corrupt_table_file_degrades_to_previous_checkpoint() {
        let dir = TempDir::new();
        let entry = CheckpointTable {
            name: "t".into(),
            epoch: 1,
            table: Arc::new(sample_table(6, 8)),
        };
        write_checkpoint(&dir.0, 1, 10, 2, std::slice::from_ref(&entry)).unwrap();
        // a complete-looking seq-2 whose table file got a flipped bit
        write_checkpoint(&dir.0, 2, 20, 2, &[entry]).unwrap();
        let tbl = dir.0.join(checkpoint_dir_name(2)).join("t0.tbl");
        let mut bytes = fs::read(&tbl).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&tbl, bytes).unwrap();
        // seq 1 was pruned by seq 2's success, so with seq 2 corrupt there
        // is no loadable checkpoint left
        assert!(load_latest_checkpoint(&dir.0, 8).unwrap().is_none());
    }
}
