//! Durability configuration: where the log and checkpoints live, and how
//! eagerly the log is fsynced.

use std::path::{Path, PathBuf};

/// When the log file is flushed to stable storage.
///
/// Every policy keeps the *ordering* guarantee (a record is written to the
/// OS before the in-memory catalog applies it); the policy only controls how
/// much acknowledged-but-unsynced work a whole-machine crash can lose. A
/// mere process crash loses nothing under any policy — the page cache
/// survives the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append. Zero loss window, highest latency;
    /// batched appends amortize it, and concurrent writers share one fsync
    /// via group commit.
    Always,
    /// `fsync` once every `n` appends (an `append_rows` batch counts as
    /// one). Bounds the loss window to `n` acknowledged appends.
    EveryN(u32),
    /// `fsync` when roughly a chunk's worth of rows has accumulated since
    /// the last sync, aligning the sync cadence with chunk sealing. The
    /// cheapest policy; the loss window is up to one chunk of rows.
    OnSeal,
}

/// Configuration for the durability subsystem, passed to
/// `DatabaseBuilder::durability`.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Root directory for all durable state. The log lives in `<dir>/wal/`,
    /// checkpoints in `<dir>/checkpoints/`. Created if absent.
    pub dir: PathBuf,
    /// When appends are flushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Background checkpoint trigger: snapshot once this many rows have been
    /// appended since the last checkpoint (layout changes from compaction
    /// also trigger one regardless of this count).
    pub checkpoint_after_rows: u64,
}

impl DurabilityConfig {
    /// A configuration rooted at `dir` with the defaults: [`FsyncPolicy::OnSeal`]
    /// and a checkpoint every 65 536 appended rows.
    pub fn at(dir: impl AsRef<Path>) -> Self {
        DurabilityConfig {
            dir: dir.as_ref().to_path_buf(),
            fsync: FsyncPolicy::OnSeal,
            checkpoint_after_rows: 65_536,
        }
    }

    /// Set the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the row-count checkpoint trigger.
    pub fn checkpoint_after_rows(mut self, rows: u64) -> Self {
        self.checkpoint_after_rows = rows;
        self
    }

    /// Validate the configuration, returning `(parameter, reason)` on error
    /// so the kernel can surface its own typed `Config` error.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        if self.dir.as_os_str().is_empty() {
            return Err(("durability.dir", "must not be empty".to_string()));
        }
        if self.fsync == FsyncPolicy::EveryN(0) {
            return Err((
                "durability.fsync",
                "EveryN(0) never syncs; use EveryN(1) or Always".to_string(),
            ));
        }
        if self.checkpoint_after_rows == 0 {
            return Err((
                "durability.checkpoint_after_rows",
                "must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// The log directory, `<dir>/wal`.
    pub fn wal_dir(&self) -> PathBuf {
        self.dir.join("wal")
    }

    /// The checkpoint directory, `<dir>/checkpoints`.
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.dir.join("checkpoints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let config = DurabilityConfig::at("/tmp/aidx")
            .fsync(FsyncPolicy::EveryN(64))
            .checkpoint_after_rows(1024);
        assert_eq!(config.fsync, FsyncPolicy::EveryN(64));
        assert_eq!(config.checkpoint_after_rows, 1024);
        assert_eq!(config.wal_dir(), PathBuf::from("/tmp/aidx/wal"));
        assert_eq!(
            config.checkpoint_dir(),
            PathBuf::from("/tmp/aidx/checkpoints")
        );
        assert!(config.validate().is_ok());
    }

    #[test]
    fn invalid_configurations_are_named() {
        let empty = DurabilityConfig::at("");
        assert_eq!(empty.validate().unwrap_err().0, "durability.dir");
        let zero_n = DurabilityConfig::at("/tmp/aidx").fsync(FsyncPolicy::EveryN(0));
        assert_eq!(zero_n.validate().unwrap_err().0, "durability.fsync");
        let zero_rows = DurabilityConfig::at("/tmp/aidx").checkpoint_after_rows(0);
        assert_eq!(
            zero_rows.validate().unwrap_err().0,
            "durability.checkpoint_after_rows"
        );
    }
}
