//! The durability subsystem's typed error.

use std::fmt;

/// Result alias used throughout `aidx-wal`.
pub type WalResult<T> = std::result::Result<T, WalError>;

/// Errors produced by the log and checkpoint machinery.
///
/// Carries owned strings instead of a nested [`std::io::Error`] so the type
/// stays `Clone + PartialEq` — the kernel's workspace-wide error derives
/// both, and a durability error must cross that boundary via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An operating-system level failure (open, write, fsync, rename, ...).
    Io {
        /// What the subsystem was doing, usually including the path.
        context: String,
        /// The underlying `io::Error`, rendered.
        message: String,
    },
    /// A frame or file that is structurally invalid *before* its end — a
    /// checksum mismatch, an impossible length, an unknown record tag.
    ///
    /// The log reader never surfaces this for the tail of the log (a torn
    /// tail is a clean end-of-log); it is the typed verdict on a buffer the
    /// caller asked to be decoded in isolation.
    Corrupt {
        /// Byte offset the corruption was detected at.
        offset: u64,
        /// What failed to parse.
        reason: String,
    },
}

impl WalError {
    /// Shorthand for an [`WalError::Io`] from an `io::Error`.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> Self {
        WalError::Io {
            context: context.into(),
            message: error.to_string(),
        }
    }

    /// Shorthand for a [`WalError::Corrupt`].
    pub fn corrupt(offset: u64, reason: impl Into<String>) -> Self {
        WalError::Corrupt {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, message } => write!(f, "wal io error ({context}): {message}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "wal corruption at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_constructors() {
        let io = WalError::io(
            "open wal/wal-1.log",
            &std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(io.to_string().contains("open wal/wal-1.log"));
        assert!(io.to_string().contains("gone"));
        let corrupt = WalError::corrupt(42, "bad checksum");
        assert!(corrupt.to_string().contains("byte 42"));
        assert!(corrupt.to_string().contains("bad checksum"));
        assert_eq!(corrupt.clone(), corrupt);
    }
}
