//! The WAL record codec: logical records, their byte layout, and the framing
//! that makes the log readable after a torn write.
//!
//! Only *logical* state changes are logged — `CreateTable`, `DropTable`,
//! `Append`. Physical re-layout (chunk compaction) and adaptive index
//! reorganization are deliberately absent: both are re-derivable from the
//! data, so logging them would buy nothing and cost every insert.
//!
//! ## Frame layout
//!
//! ```text
//! +---------------+---------------+----------------------------------+
//! | u32 LE length | u32 LE crc32  | payload (`length` bytes)         |
//! +---------------+---------------+----------------------------------+
//! payload = u64 LE lsn | u8 kind | record body
//! ```
//!
//! The CRC covers the whole payload, including the LSN, so a flipped bit in
//! any of them is caught by the checksum. [`decode_frame`] is *total*: every
//! possible byte string decodes to a record, a clean "no complete frame
//! here" ([`Ok(None)`](Ok)), or a typed [`WalError::Corrupt`] — never a
//! panic, and never an allocation driven by an unvalidated length.

use crate::crc::crc32;
use crate::error::{WalError, WalResult};
use aidx_columnstore::table::{Field, Schema};
use aidx_columnstore::types::{DataType, Value};

/// Upper bound on a frame payload. Real payloads are bounded by the append
/// batch size; this guard keeps a corrupt length field from driving a
/// multi-gigabyte allocation before the checksum gets a chance to object.
pub const MAX_PAYLOAD_BYTES: usize = 256 * 1024 * 1024;

/// One logical, replayable state change.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was registered: its name and schema. Initial contents are
    /// logged as a following [`WalRecord::Append`], so one record kind
    /// covers both empty and pre-populated creation.
    CreateTable {
        /// The table name.
        name: String,
        /// `(column name, column type)` in schema order.
        fields: Vec<(String, DataType)>,
    },
    /// A table was dropped.
    DropTable {
        /// The table name.
        name: String,
    },
    /// Rows were appended (one record per batch; `append_row` is a batch of
    /// one).
    Append {
        /// The table appended to.
        table: String,
        /// The appended rows, one `Value` per column in schema order.
        rows: Vec<Vec<Value>>,
    },
}

impl WalRecord {
    /// The schema a [`WalRecord::CreateTable`] describes.
    ///
    /// Returns `None` for other record kinds.
    pub fn schema(&self) -> Option<Schema> {
        match self {
            WalRecord::CreateTable { fields, .. } => Some(Schema::new(
                fields
                    .iter()
                    .map(|(name, dtype)| Field::new(name.clone(), *dtype))
                    .collect(),
            )),
            _ => None,
        }
    }
}

const KIND_CREATE_TABLE: u8 = 1;
const KIND_DROP_TABLE: u8 = 2;
const KIND_APPEND: u8 = 3;

const TAG_INT64: u8 = 0;
const TAG_FLOAT64: u8 = 1;
const TAG_UTF8: u8 = 2;
const TAG_NULL: u8 = 3;

// ---------------------------------------------------------------------------
// primitive writers

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int64(v) => {
            out.push(TAG_INT64);
            put_u64(out, *v as u64);
        }
        Value::Float64(v) => {
            out.push(TAG_FLOAT64);
            put_u64(out, v.to_bits());
        }
        Value::Utf8(s) => {
            out.push(TAG_UTF8);
            put_str(out, s);
        }
        Value::Null => out.push(TAG_NULL),
    }
}

// ---------------------------------------------------------------------------
// primitive readers: a cursor over a byte slice whose every read is bounds-
// checked and whose every failure is a typed `Corrupt`

/// A bounds-checked reader over a byte slice. All durability parsers
/// (frames, checkpoint files, manifests) read through this, so no parser can
/// panic on truncated input.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn offset(&self) -> u64 {
        self.pos as u64
    }

    pub(crate) fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> WalResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WalError::corrupt(self.pos as u64, format!("truncated {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &str) -> WalResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> WalResult<u32> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self, what: &str) -> WalResult<u64> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn str(&mut self, what: &str) -> WalResult<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WalError::corrupt(self.pos as u64, format!("non-utf8 {what}")))
    }

    pub(crate) fn value(&mut self) -> WalResult<Value> {
        let tag = self.u8("value tag")?;
        Ok(match tag {
            TAG_INT64 => Value::Int64(self.u64("int64 value")? as i64),
            TAG_FLOAT64 => Value::Float64(f64::from_bits(self.u64("float64 value")?)),
            TAG_UTF8 => Value::Utf8(self.str("utf8 value")?),
            TAG_NULL => Value::Null,
            other => {
                return Err(WalError::corrupt(
                    self.pos as u64,
                    format!("unknown value tag {other}"),
                ))
            }
        })
    }
}

pub(crate) fn data_type_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int64 => TAG_INT64,
        DataType::Float64 => TAG_FLOAT64,
        DataType::Utf8 => TAG_UTF8,
    }
}

pub(crate) fn data_type_from_tag(tag: u8, offset: u64) -> WalResult<DataType> {
    match tag {
        TAG_INT64 => Ok(DataType::Int64),
        TAG_FLOAT64 => Ok(DataType::Float64),
        TAG_UTF8 => Ok(DataType::Utf8),
        other => Err(WalError::corrupt(
            offset,
            format!("unknown data type tag {other}"),
        )),
    }
}

// ---------------------------------------------------------------------------
// record body codec

fn encode_body(record: &WalRecord, out: &mut Vec<u8>) {
    match record {
        WalRecord::CreateTable { name, fields } => {
            out.push(KIND_CREATE_TABLE);
            put_str(out, name);
            put_u32(out, fields.len() as u32);
            for (field, dtype) in fields {
                put_str(out, field);
                out.push(data_type_tag(*dtype));
            }
        }
        WalRecord::DropTable { name } => {
            out.push(KIND_DROP_TABLE);
            put_str(out, name);
        }
        WalRecord::Append { table, rows } => {
            out.push(KIND_APPEND);
            put_str(out, table);
            put_u32(out, rows.len() as u32);
            for row in rows {
                put_u32(out, row.len() as u32);
                for value in row {
                    put_value(out, value);
                }
            }
        }
    }
}

fn decode_body(reader: &mut Reader<'_>) -> WalResult<WalRecord> {
    let kind = reader.u8("record kind")?;
    let record = match kind {
        KIND_CREATE_TABLE => {
            let name = reader.str("table name")?;
            let n_fields = reader.u32("field count")? as usize;
            let mut fields = Vec::with_capacity(n_fields.min(1024));
            for _ in 0..n_fields {
                let field = reader.str("field name")?;
                let tag = reader.u8("field type")?;
                fields.push((field, data_type_from_tag(tag, reader.offset())?));
            }
            WalRecord::CreateTable { name, fields }
        }
        KIND_DROP_TABLE => WalRecord::DropTable {
            name: reader.str("table name")?,
        },
        KIND_APPEND => {
            let table = reader.str("table name")?;
            let n_rows = reader.u32("row count")? as usize;
            let mut rows = Vec::with_capacity(n_rows.min(4096));
            for _ in 0..n_rows {
                let arity = reader.u32("row arity")? as usize;
                let mut row = Vec::with_capacity(arity.min(1024));
                for _ in 0..arity {
                    row.push(reader.value()?);
                }
                rows.push(row);
            }
            WalRecord::Append { table, rows }
        }
        other => {
            return Err(WalError::corrupt(
                reader.offset(),
                format!("unknown record kind {other}"),
            ))
        }
    };
    if !reader.is_exhausted() {
        return Err(WalError::corrupt(
            reader.offset(),
            "trailing bytes after record body",
        ));
    }
    Ok(record)
}

// ---------------------------------------------------------------------------
// framing

/// Encode one record (with its log sequence number) as a complete frame:
/// length prefix, payload checksum, payload.
pub fn encode_frame(record: &WalRecord, lsn: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, lsn);
    encode_body(record, &mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decode the frame at the start of `buf`.
///
/// * `Ok(Some((record, lsn, consumed)))` — a complete, checksum-valid frame
///   occupying the first `consumed` bytes.
/// * `Ok(None)` — the buffer ends before a complete frame does: an empty
///   buffer, a partial header, or a header whose payload is cut short. This
///   is the torn-tail case, a clean end-of-log.
/// * `Err(`[`WalError::Corrupt`]`)` — the bytes claim to be a complete frame
///   but are not (checksum mismatch, impossible length, unknown tag,
///   trailing garbage inside the payload).
pub fn decode_frame(buf: &[u8]) -> WalResult<Option<(WalRecord, u64, usize)>> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let length = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if length > MAX_PAYLOAD_BYTES {
        return Err(WalError::corrupt(
            0,
            format!("payload length {length} exceeds the {MAX_PAYLOAD_BYTES}-byte bound"),
        ));
    }
    // a payload must at least hold its LSN and a record kind
    if length < 9 {
        return Err(WalError::corrupt(
            0,
            format!("payload length {length} below the 9-byte minimum"),
        ));
    }
    let expected_crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let Some(payload) = buf.get(8..8 + length) else {
        return Ok(None); // torn tail: the frame was cut mid-payload
    };
    if crc32(payload) != expected_crc {
        return Err(WalError::corrupt(8, "payload checksum mismatch"));
    }
    let mut reader = Reader::new(payload);
    let lsn = reader.u64("lsn")?;
    let record = decode_body(&mut reader)?;
    Ok(Some((record, lsn, 8 + length)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "orders".into(),
                fields: vec![
                    ("k".into(), DataType::Int64),
                    ("price".into(), DataType::Float64),
                    ("label".into(), DataType::Utf8),
                ],
            },
            WalRecord::DropTable { name: "tmp".into() },
            WalRecord::Append {
                table: "orders".into(),
                rows: vec![
                    vec![
                        Value::Int64(-7),
                        Value::Float64(2.5),
                        Value::Utf8("röw".into()),
                    ],
                    vec![
                        Value::Int64(i64::MAX),
                        Value::Float64(f64::NAN),
                        Value::Null,
                    ],
                ],
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for (i, record) in sample_records().into_iter().enumerate() {
            let lsn = 1000 + i as u64;
            let frame = encode_frame(&record, lsn);
            let (decoded, got_lsn, consumed) = decode_frame(&frame).unwrap().unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(got_lsn, lsn);
            // NaN != NaN under PartialEq on Value, so compare via encoding
            assert_eq!(encode_frame(&decoded, lsn), frame);
        }
    }

    #[test]
    fn truncated_frames_read_as_clean_eof() {
        let frame = encode_frame(&sample_records()[2], 9);
        for cut in 0..frame.len() {
            let result = decode_frame(&frame[..cut]);
            assert!(
                matches!(result, Ok(None) | Err(WalError::Corrupt { .. })),
                "cut at {cut}: {result:?}"
            );
        }
        // cutting inside the header or payload (but past the 8-byte header)
        // must specifically be the clean-EOF verdict
        assert_eq!(decode_frame(&frame[..4]).unwrap(), None);
        assert_eq!(decode_frame(&frame[..frame.len() - 1]).unwrap(), None);
        assert_eq!(decode_frame(&[]).unwrap(), None);
    }

    #[test]
    fn corruption_is_detected_not_believed() {
        let frame = encode_frame(&sample_records()[0], 77);
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            match decode_frame(&bad) {
                Ok(Some((record, lsn, _))) => {
                    // the only acceptable "valid" outcome is the original
                    // record (cannot happen for a single-bit flip with a
                    // correct CRC, so this arm is effectively unreachable)
                    assert_eq!(encode_frame(&record, lsn), frame, "byte {i}");
                }
                Ok(None) | Err(WalError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocation() {
        let mut frame = encode_frame(&sample_records()[1], 3);
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(WalError::Corrupt { .. })
        ));
        frame[0..4].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn create_table_exposes_its_schema() {
        let record = &sample_records()[0];
        let schema = record.schema().unwrap();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.fields()[2].name(), "label");
        assert_eq!(schema.fields()[2].data_type(), DataType::Utf8);
        assert!(sample_records()[1].schema().is_none());
    }
}
