//! # aidx-wal
//!
//! Durability for the adaptive indexing engine: an append-only, checksummed
//! write-ahead log, chunk-granular checkpoints, and crash recovery.
//!
//! The storage layer above this crate is unusually well shaped for cheap
//! durability, and the design here leans into all three properties:
//!
//! * **Sealed chunks are immutable** — once a segment chunk is sealed it is
//!   never rewritten in place, so a checkpoint is a plain write-once dump of
//!   the chunk data plus a catalog manifest. No page-level undo, no fuzzy
//!   checkpoint fence.
//! * **Only appends change logical state** — the log records `CreateTable` /
//!   `DropTable` / `Append` and nothing else. Compaction re-layouts chunks
//!   without changing any row's value or position, so it writes **no** log
//!   records; recovery re-derives layout from the last checkpoint plus the
//!   appended rows.
//! * **Adaptive indexes are re-derivable by design** — cracking's index
//!   updates are side effects of queries, so index state is *never* logged
//!   or checkpointed. Recovery replays data only and lets the first query
//!   after restart rebuild whatever structure it needs, which is a payoff
//!   classic ARIES-style designs do not get.
//!
//! The crate is std-only: records are length-prefixed frames with a CRC-32
//! over the payload, the reader is *total* (a torn or corrupt tail reads as
//! a clean end-of-log, never a panic), and checkpoints follow a
//! manifest-last protocol so a crash mid-checkpoint leaves an incomplete
//! directory that recovery detects and ignores.

#![deny(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod crc;
pub mod error;
pub mod log;
pub mod record;

pub use checkpoint::{load_latest_checkpoint, write_checkpoint, CheckpointTable, LoadedCheckpoint};
pub use config::{DurabilityConfig, FsyncPolicy};
pub use error::{WalError, WalResult};
pub use log::{read_log, LogReplay, Wal, WalStatsSnapshot, WalTelemetry};
pub use record::{decode_frame, encode_frame, WalRecord};
