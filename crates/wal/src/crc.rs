//! CRC-32 (IEEE 802.3 polynomial), table-driven, computed at compile time.
//!
//! Every log frame checksums its payload and every checkpoint file checksums
//! its whole body with this function, so a single flipped bit anywhere in
//! either is detected before a record or chunk is believed.

/// The reflected IEEE polynomial used by zip, ethernet, zlib, ...
const POLYNOMIAL: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // the classic check value for this polynomial
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"adaptive indexing".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "byte {i} bit {bit}");
            }
        }
    }
}
