//! # aidx-workloads
//!
//! Data generators, query-sequence generators and the benchmark metrics used
//! to evaluate adaptive indexing, following the methodology of
//! "Benchmarking adaptive indexing" (Graefe, Idreos, Kuno, Manegold —
//! TPCTC 2010), which the EDBT 2012 tutorial presents as the yardstick for
//! comparing techniques:
//!
//! * the **initialization cost** the first query pays compared to a plain
//!   scan, and
//! * the **number of queries** that must be processed before a random query
//!   benefits from the index structure without paying any further overhead
//!   (convergence).
//!
//! The crate provides:
//!
//! * [`data`] — synthetic base columns (uniform, sequential, duplicated,
//!   clustered) with deterministic seeds;
//! * [`query`] — query-sequence generators (uniform random, skewed/Zipf,
//!   sequential, periodically shifting focus, point queries);
//! * [`metrics`] — per-query cost series, the two benchmark metrics, and the
//!   cumulative-cost / crossover analysis used by the harness binaries.

#![warn(missing_docs)]

pub mod data;
pub mod metrics;
pub mod query;

pub use data::DataDistribution;
pub use metrics::{CostSeries, WorkloadReport};
pub use query::{QueryWorkload, RangeQuery, WorkloadKind};
