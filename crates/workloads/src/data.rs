//! Synthetic base-column generators.
//!
//! All generators are deterministic given a seed, so experiments are exactly
//! reproducible.

use aidx_columnstore::column::Column;
use aidx_columnstore::table::Table;
use aidx_columnstore::types::Key;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The shape of the generated key column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataDistribution {
    /// A random permutation of `0..n` (every key unique, uniform order) —
    /// the standard column of the cracking experiments.
    UniformPermutation,
    /// Uniformly random values in `[0, domain)` (duplicates possible).
    UniformRandom {
        /// Exclusive upper bound of the value domain.
        domain: Key,
    },
    /// Already sorted ascending values `0..n` — the best case for any index,
    /// the degenerate case for cracking's convergence metric.
    SortedAscending,
    /// Sorted descending values.
    SortedDescending,
    /// Low-cardinality data: values in `[0, cardinality)` repeated round-robin
    /// then shuffled.
    LowCardinality {
        /// Number of distinct values.
        cardinality: Key,
    },
    /// Values clustered around `clusters` centers (models skewed domains).
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Half-width of each cluster.
        spread: Key,
    },
}

/// Generate `n` keys with the given distribution and seed.
pub fn generate_keys(n: usize, distribution: DataDistribution, seed: u64) -> Vec<Key> {
    let mut rng = StdRng::seed_from_u64(seed);
    match distribution {
        DataDistribution::UniformPermutation => {
            let mut keys: Vec<Key> = (0..n as Key).collect();
            keys.shuffle(&mut rng);
            keys
        }
        DataDistribution::UniformRandom { domain } => {
            let domain = domain.max(1);
            (0..n).map(|_| rng.gen_range(0..domain)).collect()
        }
        DataDistribution::SortedAscending => (0..n as Key).collect(),
        DataDistribution::SortedDescending => (0..n as Key).rev().collect(),
        DataDistribution::LowCardinality { cardinality } => {
            let cardinality = cardinality.max(1);
            let mut keys: Vec<Key> = (0..n).map(|i| (i as Key) % cardinality).collect();
            keys.shuffle(&mut rng);
            keys
        }
        DataDistribution::Clustered { clusters, spread } => {
            let clusters = clusters.max(1);
            let spread = spread.max(1);
            let domain = (n as Key).max(1);
            let centers: Vec<Key> = (0..clusters).map(|_| rng.gen_range(0..domain)).collect();
            (0..n)
                .map(|_| {
                    let center = centers[rng.gen_range(0..clusters)];
                    let offset = rng.gen_range(-spread..=spread);
                    (center + offset).clamp(0, domain - 1)
                })
                .collect()
        }
    }
}

/// Generate an `Int64` column with the given distribution.
pub fn generate_column(n: usize, distribution: DataDistribution, seed: u64) -> Column {
    Column::from_i64(generate_keys(n, distribution, seed))
}

/// Generate a multi-column table in the style of the sideways-cracking
/// experiments: a selection attribute `a` plus `tail_count` projection
/// attributes `b0..b{tail_count-1}` that are deterministic functions of `a`
/// (so tests can verify tuple reconstruction end to end).
pub fn generate_multi_column_table(n: usize, tail_count: usize, seed: u64) -> Table {
    let a = generate_keys(n, DataDistribution::UniformPermutation, seed);
    let mut columns = vec![("a".to_owned(), Column::from_i64(a.clone()))];
    for t in 0..tail_count {
        let factor = (t as Key + 2) * 10;
        let tail: Vec<Key> = a.iter().map(|&v| v * factor + t as Key).collect();
        columns.push((format!("b{t}"), Column::from_i64(tail)));
    }
    let named: Vec<(&str, Column)> = columns
        .iter()
        .map(|(name, column)| (name.as_str(), column.clone()))
        .collect();
    Table::from_columns(named).expect("columns are equally long by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_contains_every_key_once() {
        let keys = generate_keys(1000, DataDistribution::UniformPermutation, 1);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<Key>>());
        // and it is actually shuffled
        assert_ne!(keys, sorted);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for dist in [
            DataDistribution::UniformPermutation,
            DataDistribution::UniformRandom { domain: 500 },
            DataDistribution::LowCardinality { cardinality: 10 },
            DataDistribution::Clustered {
                clusters: 5,
                spread: 20,
            },
        ] {
            let a = generate_keys(500, dist, 42);
            let b = generate_keys(500, dist, 42);
            let c = generate_keys(500, dist, 43);
            assert_eq!(a, b, "{dist:?}");
            assert_ne!(a, c, "{dist:?}: different seeds should differ");
        }
    }

    #[test]
    fn sorted_distributions() {
        let asc = generate_keys(100, DataDistribution::SortedAscending, 0);
        assert!(asc.windows(2).all(|w| w[0] < w[1]));
        let desc = generate_keys(100, DataDistribution::SortedDescending, 0);
        assert!(desc.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn uniform_random_respects_domain() {
        let keys = generate_keys(2000, DataDistribution::UniformRandom { domain: 100 }, 7);
        assert!(keys.iter().all(|&k| (0..100).contains(&k)));
        let zero_domain = generate_keys(10, DataDistribution::UniformRandom { domain: 0 }, 7);
        assert!(zero_domain.iter().all(|&k| k == 0));
    }

    #[test]
    fn low_cardinality_has_exactly_that_many_distinct_values() {
        let keys = generate_keys(
            1000,
            DataDistribution::LowCardinality { cardinality: 16 },
            3,
        );
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 16);
    }

    #[test]
    fn clustered_stays_in_bounds() {
        let keys = generate_keys(
            5000,
            DataDistribution::Clustered {
                clusters: 3,
                spread: 50,
            },
            11,
        );
        assert!(keys.iter().all(|&k| (0..5000).contains(&k)));
    }

    #[test]
    fn empty_columns() {
        for dist in [
            DataDistribution::UniformPermutation,
            DataDistribution::SortedAscending,
        ] {
            assert!(generate_keys(0, dist, 1).is_empty());
        }
        assert_eq!(
            generate_column(0, DataDistribution::SortedAscending, 1).len(),
            0
        );
    }

    #[test]
    fn multi_column_table_shape_and_relationships() {
        let table = generate_multi_column_table(200, 3, 5);
        assert_eq!(table.row_count(), 200);
        assert_eq!(table.schema().arity(), 4);
        let a = table.column("a").unwrap().as_i64().unwrap();
        let b1 = table.column("b1").unwrap().as_i64().unwrap();
        for i in 0..200 {
            assert_eq!(b1.value(i), a.value(i) * 30 + 1);
        }
    }
}
