//! Query-sequence generators.
//!
//! The adaptive-indexing benchmark varies *where* queries land in the key
//! domain and *how that changes over time*; the per-query cost curves of the
//! different techniques react very differently to these patterns, which is
//! exactly what experiments E1, E5, E6 and E8 measure.

use aidx_columnstore::types::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One range query `[low, high)` over the key domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Inclusive lower bound.
    pub low: Key,
    /// Exclusive upper bound.
    pub high: Key,
}

impl RangeQuery {
    /// Construct a query, swapping the bounds if necessary.
    pub fn new(low: Key, high: Key) -> Self {
        if low <= high {
            RangeQuery { low, high }
        } else {
            RangeQuery {
                low: high,
                high: low,
            }
        }
    }

    /// Width of the queried range.
    pub fn width(&self) -> Key {
        self.high - self.low
    }
}

/// The access pattern of a query sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Range position chosen uniformly at random — the canonical benchmark
    /// workload.
    UniformRandom,
    /// Range positions drawn from a Zipf distribution over `hot_regions`
    /// equally sized regions: a few regions absorb most queries.
    Skewed {
        /// Number of regions the domain is divided into.
        hot_regions: usize,
        /// Zipf exponent (1.0 = classic Zipf; larger = more skew).
        exponent: f64,
    },
    /// Non-overlapping ranges sweeping the domain left to right — the
    /// worst case for plain cracking's convergence.
    Sequential,
    /// The hot zone (a window of `focus_fraction` of the domain) jumps to a
    /// new random location every `period` queries — the "dynamic workload"
    /// the tutorial motivates adaptive indexing with.
    ShiftingFocus {
        /// Queries between focus changes.
        period: usize,
        /// Fraction of the domain covered by the focus window (0, 1].
        focus_fraction: f64,
    },
    /// Point (equality) queries: `[v, v+1)` at uniformly random `v`.
    Point,
}

/// A reproducible query workload over a key domain `[domain_low, domain_high)`.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The generated query sequence.
    queries: Vec<RangeQuery>,
    kind_label: &'static str,
}

impl QueryWorkload {
    /// Generate `count` queries of the given kind over `[domain_low,
    /// domain_high)`. `selectivity` is the fraction of the domain each range
    /// covers (ignored for [`WorkloadKind::Point`]).
    pub fn generate(
        kind: WorkloadKind,
        count: usize,
        domain_low: Key,
        domain_high: Key,
        selectivity: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let domain_high = domain_high.max(domain_low + 1);
        let span = (domain_high - domain_low) as f64;
        let width = ((span * selectivity.clamp(0.0, 1.0)).round() as Key).max(1);
        let queries = match kind {
            WorkloadKind::UniformRandom => (0..count)
                .map(|_| {
                    let low = sample_low(&mut rng, domain_low, domain_high, width);
                    clamp_to_domain(low, width, domain_low, domain_high)
                })
                .collect(),
            WorkloadKind::Skewed {
                hot_regions,
                exponent,
            } => {
                let regions = hot_regions.max(1);
                let weights = zipf_weights(regions, exponent);
                let region_span = ((domain_high - domain_low) / regions as Key).max(1);
                (0..count)
                    .map(|_| {
                        let region = sample_weighted(&mut rng, &weights);
                        let region_low = domain_low + region as Key * region_span;
                        let region_high = (region_low + region_span).min(domain_high);
                        // the region may be narrower than the query width
                        // (high selectivity × many regions, or the truncated
                        // last region): anchor inside the region, then let
                        // the clamp slide the range back into the domain
                        let low = sample_low(&mut rng, region_low, region_high, width);
                        clamp_to_domain(low, width, domain_low, domain_high)
                    })
                    .collect()
            }
            WorkloadKind::Sequential => {
                let mut queries = Vec::with_capacity(count);
                let mut low = domain_low;
                for _ in 0..count {
                    // the final step of a sweep may not divide evenly; the
                    // clamp slides it left so it ends exactly at the edge
                    queries.push(clamp_to_domain(low, width, domain_low, domain_high));
                    low += width;
                    if low >= domain_high {
                        low = domain_low;
                    }
                }
                queries
            }
            WorkloadKind::ShiftingFocus {
                period,
                focus_fraction,
            } => {
                let period = period.max(1);
                let focus_span = ((span * focus_fraction.clamp(0.01, 1.0)) as Key).max(width);
                let mut queries = Vec::with_capacity(count);
                let mut focus_low = domain_low;
                for i in 0..count {
                    if i % period == 0 {
                        focus_low = sample_low(&mut rng, domain_low, domain_high, focus_span);
                    }
                    let focus_high = (focus_low + focus_span).min(domain_high);
                    let low = sample_low(&mut rng, focus_low, focus_high, width);
                    queries.push(clamp_to_domain(low, width, domain_low, domain_high));
                }
                queries
            }
            WorkloadKind::Point => (0..count)
                .map(|_| {
                    let v = rng.gen_range(domain_low..domain_high);
                    RangeQuery::new(v, v + 1)
                })
                .collect(),
        };
        QueryWorkload {
            queries,
            kind_label: kind_label(kind),
        }
    }

    /// The generated queries.
    pub fn queries(&self) -> &[RangeQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// A short label describing the workload kind (for harness output).
    pub fn label(&self) -> &'static str {
        self.kind_label
    }

    /// Iterate over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &RangeQuery> {
        self.queries.iter()
    }
}

fn kind_label(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::UniformRandom => "uniform-random",
        WorkloadKind::Skewed { .. } => "skewed-zipf",
        WorkloadKind::Sequential => "sequential",
        WorkloadKind::ShiftingFocus { .. } => "shifting-focus",
        WorkloadKind::Point => "point",
    }
}

fn sample_low(rng: &mut StdRng, domain_low: Key, domain_high: Key, width: Key) -> Key {
    let max_low = (domain_high - width).max(domain_low);
    if max_low <= domain_low {
        domain_low
    } else {
        rng.gen_range(domain_low..=max_low)
    }
}

/// Clamp `[low, low + width)` into `[domain_low, domain_high)`, preserving
/// the width whenever the domain is wide enough (the range slides left
/// rather than shrinking). Regression guard for ISSUE 6: `Skewed` anchors
/// ranges inside regions narrower than `width`, and `Sequential` /
/// `ShiftingFocus` step `low + width` past the domain edge — all of which
/// used to emit ranges extending past `domain_high`.
fn clamp_to_domain(low: Key, width: Key, domain_low: Key, domain_high: Key) -> RangeQuery {
    if domain_high - domain_low < width {
        // the whole domain is narrower than the requested width: cover it
        // all, but never emit an empty range (degenerate domains still get
        // a unit-width query, matching the pre-clamp behaviour)
        let high = domain_high.max(domain_low + 1);
        return RangeQuery::new(domain_low, high);
    }
    let high = low.saturating_add(width).min(domain_high);
    let low = (high - width).max(domain_low);
    RangeQuery::new(low, high)
}

/// Normalized Zipf weights for `n` ranks with the given exponent.
fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n)
        .map(|rank| 1.0 / (rank as f64).powf(exponent))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let draw: f64 = rng.gen_range(0.0..1.0);
    let mut cumulative = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        cumulative += w;
        if draw < cumulative {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_query_normalizes_bounds() {
        let q = RangeQuery::new(10, 5);
        assert_eq!(q.low, 5);
        assert_eq!(q.high, 10);
        assert_eq!(q.width(), 5);
    }

    #[test]
    fn uniform_workload_shape() {
        let w = QueryWorkload::generate(WorkloadKind::UniformRandom, 500, 0, 100_000, 0.01, 1);
        assert_eq!(w.len(), 500);
        assert!(!w.is_empty());
        assert_eq!(w.label(), "uniform-random");
        for q in w.iter() {
            assert!(q.low >= 0 && q.high <= 100_000, "range escapes the domain");
            assert_eq!(q.width(), 1000);
        }
    }

    /// Regression (ISSUE 6): every workload kind must keep generated ranges
    /// inside `[domain_low, domain_high)`. `Skewed` used to anchor a range
    /// near the top of a hot region and let `low + width` spill past the
    /// domain edge; `Sequential` stepped past it whenever the width did not
    /// divide the domain; `ShiftingFocus` did the same at the focus window's
    /// right edge.
    #[test]
    fn all_workload_kinds_stay_inside_the_domain() {
        let kinds = [
            WorkloadKind::UniformRandom,
            // 64 regions over a span of 7_001 → region_span ≈ 109, far
            // narrower than the ~700-key query width
            WorkloadKind::Skewed {
                hot_regions: 64,
                exponent: 1.3,
            },
            WorkloadKind::Sequential,
            WorkloadKind::ShiftingFocus {
                period: 7,
                focus_fraction: 0.01,
            },
            WorkloadKind::Point,
        ];
        // deliberately awkward domain: offset low bound, width (10% of
        // 7_001 = 700) that divides nothing
        for kind in kinds {
            for seed in 0..4 {
                let w = QueryWorkload::generate(kind, 300, 17, 7_018, 0.1, seed);
                for q in w.iter() {
                    assert!(
                        q.low >= 17 && q.high <= 7_018,
                        "{kind:?} seed {seed}: [{}, {}) escapes [17, 7018)",
                        q.low,
                        q.high
                    );
                    assert!(q.width() >= 1, "{kind:?} emitted an empty range");
                }
            }
        }
    }

    /// Regression (ISSUE 6): when the width exceeds a hot region's span the
    /// range must slide left inside the domain rather than spill out.
    #[test]
    fn skewed_width_wider_than_region_is_clamped_not_spilled() {
        // 50 regions over 1_000 keys → region_span 20; width 0.3 × 1_000 =
        // 300, fifteen times the region span
        let w = QueryWorkload::generate(
            WorkloadKind::Skewed {
                hot_regions: 50,
                exponent: 1.0,
            },
            500,
            0,
            1_000,
            0.3,
            11,
        );
        for q in w.iter() {
            assert!(
                q.low >= 0 && q.high <= 1_000,
                "[{}, {}) spilled",
                q.low,
                q.high
            );
            assert_eq!(q.width(), 300, "width preserved by sliding, not shrinking");
        }
    }

    /// Regression (ISSUE 6): a sequential sweep whose width does not divide
    /// the domain ends each pass flush against the right edge.
    #[test]
    fn sequential_final_step_lands_flush_on_the_edge() {
        // domain span 130, width 13% of 130 ≈ 16 → 130 / 16 leaves a
        // partial final step
        let w = QueryWorkload::generate(WorkloadKind::Sequential, 40, 0, 130, 0.13, 1);
        let mut saw_edge = false;
        for q in w.iter() {
            assert!(q.low >= 0 && q.high <= 130);
            saw_edge |= q.high == 130;
        }
        assert!(saw_edge, "sweep should reach the right edge of the domain");
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        for kind in [
            WorkloadKind::UniformRandom,
            WorkloadKind::Skewed {
                hot_regions: 10,
                exponent: 1.2,
            },
            WorkloadKind::ShiftingFocus {
                period: 25,
                focus_fraction: 0.1,
            },
            WorkloadKind::Point,
        ] {
            let a = QueryWorkload::generate(kind, 200, 0, 10_000, 0.02, 9);
            let b = QueryWorkload::generate(kind, 200, 0, 10_000, 0.02, 9);
            let c = QueryWorkload::generate(kind, 200, 0, 10_000, 0.02, 10);
            assert_eq!(a.queries(), b.queries(), "{kind:?}");
            assert_ne!(a.queries(), c.queries(), "{kind:?}");
        }
    }

    #[test]
    fn sequential_workload_sweeps_left_to_right() {
        let w = QueryWorkload::generate(WorkloadKind::Sequential, 10, 0, 1000, 0.05, 1);
        let queries = w.queries();
        assert_eq!(queries[0].low, 0);
        for pair in queries.windows(2) {
            if pair[1].low != 0 {
                assert_eq!(
                    pair[0].high, pair[1].low,
                    "non-overlapping ascending ranges"
                );
            }
        }
        assert_eq!(w.label(), "sequential");
    }

    #[test]
    fn skewed_workload_concentrates_queries() {
        let w = QueryWorkload::generate(
            WorkloadKind::Skewed {
                hot_regions: 10,
                exponent: 1.5,
            },
            2000,
            0,
            100_000,
            0.001,
            3,
        );
        // count queries landing in the first region (the hottest)
        let hot = w.iter().filter(|q| q.low < 10_000).count();
        assert!(
            hot > 2000 / 10 * 2,
            "hot region should receive well over its fair share, got {hot}"
        );
    }

    #[test]
    fn shifting_focus_changes_regions() {
        let w = QueryWorkload::generate(
            WorkloadKind::ShiftingFocus {
                period: 50,
                focus_fraction: 0.05,
            },
            200,
            0,
            1_000_000,
            0.001,
            5,
        );
        // queries within one period stay inside a 5% window; across periods
        // the window moves
        let first_period: Vec<&RangeQuery> = w.queries()[..50].iter().collect();
        let lows: Vec<Key> = first_period.iter().map(|q| q.low).collect();
        let span = lows.iter().max().unwrap() - lows.iter().min().unwrap();
        assert!(
            span <= 50_000 + 1000,
            "span {span} exceeds the focus window"
        );
        let second_period_low = w.queries()[50].low;
        let first_period_min = *lows.iter().min().unwrap();
        // extremely unlikely to land in exactly the same window
        assert!(
            (second_period_low - first_period_min).abs() > 1000
                || w.queries()[50..100].iter().map(|q| q.low).min().unwrap() != first_period_min
        );
    }

    #[test]
    fn point_workload_has_unit_width() {
        let w = QueryWorkload::generate(WorkloadKind::Point, 100, 0, 1000, 0.5, 2);
        assert!(w.iter().all(|q| q.width() == 1));
        assert_eq!(w.label(), "point");
    }

    #[test]
    fn zipf_weights_sum_to_one_and_decay() {
        let w = zipf_weights(5, 1.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    #[test]
    fn degenerate_domains() {
        let w = QueryWorkload::generate(WorkloadKind::UniformRandom, 10, 5, 5, 0.1, 1);
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|q| q.low >= 5 && q.width() >= 1));
        let w = QueryWorkload::generate(WorkloadKind::UniformRandom, 0, 0, 100, 0.1, 1);
        assert!(w.is_empty());
    }
}
