//! Benchmark metrics for adaptive indexing (TPCTC 2010).
//!
//! A technique is characterized by its *per-query cost series*: how much work
//! (or time) each query of a sequence costs. From that series the benchmark
//! derives:
//!
//! 1. **First-query overhead** — the cost of the first query relative to a
//!    plain scan of the same data (cracking: slightly above 1; adaptive
//!    merging: a few times higher; full offline sort: highest).
//! 2. **Queries to convergence** — how many queries run before a query is
//!    answered within a small factor of the full-index cost and stays there.
//!
//! The same series also yields cumulative-cost curves and crossover points
//! between techniques, which the harness binaries print for each experiment.

use serde::{Deserialize, Serialize};

/// A per-query cost series for one technique on one workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostSeries {
    /// Technique label (e.g. "cracking", "adaptive-merging", "full-sort").
    pub label: String,
    /// Cost of each query, in whatever unit the caller measured (work units
    /// or nanoseconds); the metrics only assume the unit is consistent.
    pub per_query: Vec<f64>,
}

impl CostSeries {
    /// Create an empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        CostSeries {
            label: label.into(),
            per_query: Vec::new(),
        }
    }

    /// Create a series from recorded costs.
    pub fn from_costs(label: impl Into<String>, per_query: Vec<f64>) -> Self {
        CostSeries {
            label: label.into(),
            per_query,
        }
    }

    /// Record the cost of the next query.
    pub fn push(&mut self, cost: f64) {
        self.per_query.push(cost);
    }

    /// Number of queries recorded.
    pub fn len(&self) -> usize {
        self.per_query.len()
    }

    /// True when no queries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.per_query.is_empty()
    }

    /// Cost of the first query, if any.
    pub fn first_query_cost(&self) -> Option<f64> {
        self.per_query.first().copied()
    }

    /// Total cost of the whole sequence.
    pub fn total_cost(&self) -> f64 {
        self.per_query.iter().sum()
    }

    /// Mean per-query cost.
    pub fn mean_cost(&self) -> f64 {
        if self.per_query.is_empty() {
            0.0
        } else {
            self.total_cost() / self.per_query.len() as f64
        }
    }

    /// Mean cost of the last `n` queries (the "converged plateau" level).
    pub fn tail_mean(&self, n: usize) -> f64 {
        if self.per_query.is_empty() {
            return 0.0;
        }
        let n = n.min(self.per_query.len()).max(1);
        let tail = &self.per_query[self.per_query.len() - n..];
        tail.iter().sum::<f64>() / n as f64
    }

    /// Running cumulative cost after each query.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut total = 0.0;
        self.per_query
            .iter()
            .map(|&c| {
                total += c;
                total
            })
            .collect()
    }

    /// **Benchmark metric 1**: cost of the first query divided by
    /// `scan_cost` (the cost of answering it with a plain scan).
    pub fn first_query_overhead(&self, scan_cost: f64) -> Option<f64> {
        if scan_cost <= 0.0 {
            return None;
        }
        self.first_query_cost().map(|c| c / scan_cost)
    }

    /// **Benchmark metric 2**: the first query index (0-based) from which
    /// `consecutive` queries in a row cost at most `target_cost * (1 +
    /// tolerance)`. Returns `None` when the series never converges.
    pub fn queries_to_convergence(
        &self,
        target_cost: f64,
        tolerance: f64,
        consecutive: usize,
    ) -> Option<usize> {
        let threshold = target_cost * (1.0 + tolerance);
        let consecutive = consecutive.max(1);
        let mut streak = 0usize;
        for (i, &cost) in self.per_query.iter().enumerate() {
            if cost <= threshold {
                streak += 1;
                if streak >= consecutive {
                    return Some(i + 1 - consecutive);
                }
            } else {
                streak = 0;
            }
        }
        None
    }

    /// The query index (0-based) after which this series' cumulative cost
    /// drops below `other`'s and stays below until the end. Returns `None`
    /// when it never overtakes `other`.
    pub fn cumulative_crossover(&self, other: &CostSeries) -> Option<usize> {
        let a = self.cumulative();
        let b = other.cumulative();
        let n = a.len().min(b.len());
        let mut crossover = None;
        for i in 0..n {
            if a[i] < b[i] {
                if crossover.is_none() {
                    crossover = Some(i);
                }
            } else {
                crossover = None;
            }
        }
        crossover
    }
}

/// A bundle of cost series plus the scan/index reference costs, as produced
/// by one experiment run. The harness binaries serialize this to JSON and
/// print the derived benchmark table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Experiment identifier (e.g. "E1").
    pub experiment: String,
    /// Human-readable workload description.
    pub workload: String,
    /// Cost of a plain scan answering one query (reference for metric 1).
    pub scan_cost: f64,
    /// Converged per-query cost of a full index (reference for metric 2).
    pub full_index_cost: f64,
    /// One cost series per technique.
    pub series: Vec<CostSeries>,
}

impl WorkloadReport {
    /// Create an empty report.
    pub fn new(experiment: impl Into<String>, workload: impl Into<String>) -> Self {
        WorkloadReport {
            experiment: experiment.into(),
            workload: workload.into(),
            scan_cost: 0.0,
            full_index_cost: 0.0,
            series: Vec::new(),
        }
    }

    /// Add a technique's series.
    pub fn add_series(&mut self, series: CostSeries) {
        self.series.push(series);
    }

    /// Find a series by label.
    pub fn series_by_label(&self, label: &str) -> Option<&CostSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render the benchmark table (one row per technique) as plain text.
    pub fn render_table(&self, tolerance: f64, consecutive: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.experiment, self.workload));
        out.push_str(&format!(
            "{:<22} {:>14} {:>16} {:>18} {:>16}\n",
            "technique", "first-query", "overhead-vs-scan", "queries-to-conv", "total-cost"
        ));
        for series in &self.series {
            let first = series.first_query_cost().unwrap_or(0.0);
            let overhead = series
                .first_query_overhead(self.scan_cost)
                .map_or("n/a".to_owned(), |o| format!("{o:.2}x"));
            let convergence = series
                .queries_to_convergence(self.full_index_cost, tolerance, consecutive)
                .map_or("never".to_owned(), |q| q.to_string());
            out.push_str(&format!(
                "{:<22} {:>14.0} {:>16} {:>18} {:>16.0}\n",
                series.label,
                first,
                overhead,
                convergence,
                series.total_cost()
            ));
        }
        out
    }
}

/// Measure the wall-clock time of a closure in nanoseconds alongside its
/// result (helper for the harness binaries).
pub fn time_ns<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let result = f();
    (result, start.elapsed().as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decaying_series(label: &str, n: usize, start: f64, floor: f64) -> CostSeries {
        let mut series = CostSeries::new(label);
        for i in 0..n {
            let cost = floor + (start - floor) / (i as f64 + 1.0);
            series.push(cost);
        }
        series
    }

    #[test]
    fn basic_accessors() {
        let s = CostSeries::from_costs("x", vec![10.0, 5.0, 1.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.first_query_cost(), Some(10.0));
        assert_eq!(s.total_cost(), 16.0);
        assert!((s.mean_cost() - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.cumulative(), vec![10.0, 15.0, 16.0]);
        assert_eq!(s.tail_mean(2), 3.0);
        let empty = CostSeries::new("e");
        assert_eq!(empty.first_query_cost(), None);
        assert_eq!(empty.mean_cost(), 0.0);
        assert_eq!(empty.tail_mean(5), 0.0);
    }

    #[test]
    fn first_query_overhead_metric() {
        let s = CostSeries::from_costs("cracking", vec![130.0, 50.0]);
        assert!((s.first_query_overhead(100.0).unwrap() - 1.3).abs() < 1e-12);
        assert_eq!(s.first_query_overhead(0.0), None);
    }

    #[test]
    fn convergence_metric_finds_stable_plateau() {
        let s = CostSeries::from_costs("x", vec![100.0, 80.0, 3.0, 60.0, 2.0, 2.0, 2.0, 2.0, 2.0]);
        // target 2.0, 10% tolerance, need 3 consecutive: the single dip at
        // index 2 does not count; the real plateau starts at index 4
        assert_eq!(s.queries_to_convergence(2.0, 0.1, 3), Some(4));
        assert_eq!(s.queries_to_convergence(2.0, 0.1, 6), None);
        assert_eq!(s.queries_to_convergence(1.0, 0.0, 1), None);
        // trivially converged series
        let flat = CostSeries::from_costs("flat", vec![1.0; 5]);
        assert_eq!(flat.queries_to_convergence(1.0, 0.0, 3), Some(0));
    }

    #[test]
    fn convergence_on_decaying_series() {
        let s = decaying_series("cracking", 1000, 500.0, 5.0);
        let q = s.queries_to_convergence(5.0, 0.5, 10).expect("converges");
        assert!(q > 10 && q < 1000, "q = {q}");
    }

    #[test]
    fn cumulative_crossover() {
        // adaptive: expensive start, cheap tail; scan: flat
        let adaptive = CostSeries::from_costs("a", vec![150.0, 20.0, 5.0, 5.0, 5.0, 5.0]);
        let scan = CostSeries::from_costs("s", vec![100.0; 6]);
        let crossover = adaptive.cumulative_crossover(&scan).expect("overtakes");
        assert_eq!(crossover, 1);
        assert_eq!(scan.cumulative_crossover(&adaptive), None);
    }

    #[test]
    fn report_table_renders_all_series() {
        let mut report = WorkloadReport::new("E1", "uniform random, 10% selectivity");
        report.scan_cost = 100.0;
        report.full_index_cost = 2.0;
        report.add_series(CostSeries::from_costs("scan", vec![100.0; 10]));
        report.add_series(decaying_series("cracking", 10, 120.0, 2.0));
        let table = report.render_table(0.5, 2);
        assert!(table.contains("E1"));
        assert!(table.contains("scan"));
        assert!(table.contains("cracking"));
        assert!(table.contains("never") || table.contains("overhead"));
        assert!(report.series_by_label("cracking").is_some());
        assert!(report.series_by_label("nope").is_none());
    }

    #[test]
    fn time_ns_measures_something() {
        let (value, ns) = time_ns(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(ns >= 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let mut report = WorkloadReport::new("E7", "benchmark table");
        report.add_series(CostSeries::from_costs("x", vec![1.0, 2.0]));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"experiment\":\"E7\""));
        let back: WorkloadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series.len(), 1);
    }
}
