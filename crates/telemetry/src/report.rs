//! The rate reporter: diffs successive [`Snapshot`]s into windowed
//! [`SnapshotDelta`]s and keeps a bounded ring of recent intervals.
//!
//! A cumulative snapshot answers "how much ever"; an operator watching a
//! live server needs "how much *lately*". [`Reporter::tick`] subtracts the
//! previous snapshot from the current one: counters become per-interval
//! deltas (and rates once divided by the interval), histograms become
//! *windowed* distributions (bucket-wise difference, so p50/p99/mean are
//! computed over only this interval's observations), and gauges report
//! their current level plus how far they moved. For adaptive indexing this
//! is the signal that matters: the paper's convergence claim is about the
//! *derivative* of refinement effort, invisible in cumulative totals.

use crate::metrics::{format_ns, HistogramSnapshot, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

/// One counter's change over an interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Registry name.
    pub name: String,
    /// Events in this interval (`next - prev`, saturating: a counter new
    /// to this interval counts from zero).
    pub delta: u64,
}

/// One gauge's level and movement over an interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeDelta {
    /// Registry name.
    pub name: String,
    /// Level at the end of the interval.
    pub level: i64,
    /// Movement across the interval (`next - prev`, saturating).
    pub delta: i64,
}

/// The difference between two successive snapshots: everything that
/// happened in one reporting interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Wall-clock length of the interval, in nanoseconds.
    pub interval_ns: u64,
    /// Per-counter event deltas, sorted by name.
    pub counters: Vec<CounterDelta>,
    /// Per-gauge levels and movements, sorted by name.
    pub gauges: Vec<GaugeDelta>,
    /// Windowed histograms (bucket-wise `next - prev`), sorted by name:
    /// quantiles and means computed on these cover only this interval.
    pub histograms: Vec<HistogramSnapshot>,
}

impl SnapshotDelta {
    /// Compute the delta `next - prev` over a wall-clock `interval`.
    ///
    /// Metrics present only in `next` are treated as starting from zero
    /// (they were registered mid-interval); metrics present only in `prev`
    /// are dropped (they no longer exist — nothing to report). Counter
    /// regressions (a restarted peer) clamp to zero rather than wrapping.
    pub fn between(prev: &Snapshot, next: &Snapshot, interval: Duration) -> SnapshotDelta {
        let counters = next
            .counters
            .iter()
            .map(|c| CounterDelta {
                name: c.name.clone(),
                delta: c.value.saturating_sub(prev.counter(&c.name).unwrap_or(0)),
            })
            .collect();
        let gauges = next
            .gauges
            .iter()
            .map(|g| GaugeDelta {
                name: g.name.clone(),
                level: g.value,
                delta: g.value.saturating_sub(prev.gauge(&g.name).unwrap_or(0)),
            })
            .collect();
        let histograms = next
            .histograms
            .iter()
            .map(|h| {
                let mut windowed = HistogramSnapshot {
                    name: h.name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.clone(),
                };
                if let Some(prev_h) = prev.histogram(&h.name) {
                    windowed.count = windowed.count.saturating_sub(prev_h.count);
                    windowed.sum = windowed.sum.saturating_sub(prev_h.sum);
                    for (mine, old) in windowed.buckets.iter_mut().zip(&prev_h.buckets) {
                        *mine = mine.saturating_sub(*old);
                    }
                }
                windowed
            })
            .collect();
        let mut delta = SnapshotDelta {
            interval_ns: u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX),
            counters,
            gauges,
            histograms,
        };
        delta.counters.sort_by(|a, b| a.name.cmp(&b.name));
        delta.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        delta.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        delta
    }

    /// Shortest interval (1 µs) over which a rate is meaningful. Two
    /// back-to-back ticks (a test driving the reporter in a loop, a
    /// maintenance scheduler catching up after a stall) can produce a
    /// zero- or near-zero-length interval; dividing a delta by it would
    /// yield an absurd rate, so rate accessors return `None` below this
    /// floor instead.
    pub const MIN_RATE_INTERVAL_NS: u64 = 1_000;

    /// Interval length in (fractional) seconds. May be zero for a
    /// degenerate (back-to-back) interval — rate computations go through
    /// [`SnapshotDelta::counter_rate`], which guards against that.
    pub fn interval_secs(&self) -> f64 {
        self.interval_ns as f64 / 1e9
    }

    /// Events of the named counter in this interval.
    pub fn counter_delta(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.delta)
    }

    /// Per-second rate of the named counter over this interval. `None`
    /// when the counter is absent **or** the interval is shorter than
    /// [`SnapshotDelta::MIN_RATE_INTERVAL_NS`] — a rate over a degenerate
    /// interval would be garbage (up to `delta × 1e9` for a zero-length
    /// one), so no rate is reported at all; never `NaN` or infinite.
    pub fn counter_rate(&self, name: &str) -> Option<f64> {
        if self.interval_ns < Self::MIN_RATE_INTERVAL_NS {
            return None;
        }
        self.counter_delta(name)
            .map(|d| d as f64 / self.interval_secs())
    }

    /// Level of the named gauge at the end of the interval.
    pub fn gauge_level(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.level)
    }

    /// The named *windowed* histogram: quantiles/means cover only this
    /// interval's observations.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing moved in the interval (all counter deltas zero,
    /// all windowed histograms empty; gauge levels are ignored — a steady
    /// nonzero gauge is not activity).
    pub fn is_quiet(&self) -> bool {
        self.counters.iter().all(|c| c.delta == 0) && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Human-readable interval report: rates for counters that moved,
    /// levels for gauges, windowed count/mean/p50/p99 for histograms that
    /// saw observations. Quiet metrics are omitted — this is a change log,
    /// not an inventory. Deterministic (inputs are kept name-sorted).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "interval {}", format_ns(self.interval_ns));
        for c in self.counters.iter().filter(|c| c.delta > 0) {
            // degenerate (near-zero-length) intervals have no meaningful
            // rate; report the delta alone rather than an absurd number
            match self.counter_rate(&c.name) {
                Some(rate) => {
                    let _ = writeln!(out, "{:<44} +{} ({rate:.1}/s)", c.name, c.delta);
                }
                None => {
                    let _ = writeln!(out, "{:<44} +{}", c.name, c.delta);
                }
            }
        }
        for g in &self.gauges {
            let _ = writeln!(out, "{:<44} level={} ({:+})", g.name, g.level, g.delta);
        }
        for h in self.histograms.iter().filter(|h| h.count > 0) {
            let nanos = h.name.ends_with("_ns");
            let scaled = |v: u64| if nanos { format_ns(v) } else { v.to_string() };
            let _ = writeln!(
                out,
                "{:<44} n={} mean={} p50={} p99={}",
                h.name,
                h.count,
                h.approx_mean().map(&scaled).unwrap_or_else(|| "-".into()),
                h.p50().map(&scaled).unwrap_or_else(|| "-".into()),
                h.p99().map(&scaled).unwrap_or_else(|| "-".into()),
            );
        }
        out
    }
}

/// Diffs successive snapshots and keeps a bounded ring of recent
/// [`SnapshotDelta`]s (oldest evicted first).
///
/// The reporter is deliberately passive about *time*: the caller supplies
/// the interval with each tick (the maintenance scheduler measures it; a
/// test passes a constant), so reports are deterministic under test and
/// honest under irregular scheduling. Not internally synchronized — wrap
/// in a mutex to share.
#[derive(Debug)]
pub struct Reporter {
    capacity: usize,
    prev: Option<Snapshot>,
    ring: VecDeque<SnapshotDelta>,
}

impl Reporter {
    /// A reporter keeping at most `capacity` recent deltas (min 1).
    pub fn new(capacity: usize) -> Self {
        Reporter {
            capacity: capacity.max(1),
            prev: None,
            ring: VecDeque::new(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Absorb the next snapshot, taken `interval` after the previous one.
    ///
    /// The first tick only primes the baseline and returns `None`; every
    /// later tick returns the freshly computed delta (also pushed into the
    /// ring, evicting the oldest entry when full).
    pub fn tick(&mut self, snapshot: Snapshot, interval: Duration) -> Option<&SnapshotDelta> {
        let delta = self
            .prev
            .as_ref()
            .map(|prev| SnapshotDelta::between(prev, &snapshot, interval));
        self.prev = Some(snapshot);
        let delta = delta?;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(delta);
        self.ring.back()
    }

    /// The most recent delta, if any tick has completed an interval.
    pub fn latest(&self) -> Option<&SnapshotDelta> {
        self.ring.back()
    }

    /// Recent deltas, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &SnapshotDelta> {
        self.ring.iter()
    }

    /// Number of deltas currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True before the first completed interval.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn first_tick_primes_later_ticks_diff() {
        let registry = Registry::new();
        let counter = registry.counter("engine.queries_served");
        let hist = registry.histogram("engine.query_ns");
        let mut reporter = Reporter::new(4);
        counter.add(10);
        hist.record(100);
        assert!(reporter
            .tick(registry.snapshot(), Duration::from_secs(1))
            .is_none());
        counter.add(5);
        hist.record(200);
        hist.record(300);
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_secs(2))
            .expect("second tick yields a delta")
            .clone();
        assert_eq!(delta.counter_delta("engine.queries_served"), Some(5));
        assert_eq!(delta.counter_rate("engine.queries_served"), Some(2.5));
        let windowed = delta.histogram("engine.query_ns").unwrap();
        assert_eq!(windowed.count, 2, "only this interval's observations");
        assert_eq!(windowed.sum, 500);
        assert_eq!(windowed.approx_mean(), Some(250));
        assert!(!delta.is_quiet());
    }

    #[test]
    fn windowed_quantiles_see_only_the_interval() {
        let registry = Registry::new();
        let hist = registry.histogram("h");
        let mut reporter = Reporter::new(4);
        // first interval: a thousand large values
        for _ in 0..1000 {
            hist.record(1_000_000);
        }
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        // second interval: ten small values — cumulative p50 would still be
        // ~1e6, the windowed p50 must be small
        for _ in 0..10 {
            hist.record(8);
        }
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_secs(1))
            .unwrap();
        let windowed = delta.histogram("h").unwrap();
        assert_eq!(windowed.count, 10);
        assert!(windowed.p50().unwrap() <= 15, "windowed, not cumulative");
        assert!(windowed.p99().unwrap() <= 15);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let mut reporter = Reporter::new(2);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        for i in 0..5u64 {
            counter.add(i + 1);
            reporter.tick(registry.snapshot(), Duration::from_secs(1));
        }
        assert_eq!(reporter.len(), 2);
        let deltas: Vec<u64> = reporter
            .recent()
            .map(|d| d.counter_delta("c").unwrap())
            .collect();
        assert_eq!(deltas, vec![4, 5], "oldest intervals evicted first");
        assert_eq!(reporter.latest().unwrap().counter_delta("c"), Some(5));
    }

    #[test]
    fn ring_at_exactly_capacity_keeps_every_delta_in_order() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let mut reporter = Reporter::new(3);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        // exactly `capacity` completed intervals: nothing evicted yet
        for i in 0..3u64 {
            counter.add(i + 1);
            reporter.tick(registry.snapshot(), Duration::from_secs(1));
        }
        assert_eq!(reporter.len(), reporter.capacity());
        let deltas: Vec<u64> = reporter
            .recent()
            .map(|d| d.counter_delta("c").unwrap())
            .collect();
        assert_eq!(deltas, vec![1, 2, 3], "oldest first, none lost");
        // one tick past capacity evicts exactly the oldest
        counter.add(4);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        assert_eq!(reporter.len(), reporter.capacity());
        let deltas: Vec<u64> = reporter
            .recent()
            .map(|d| d.counter_delta("c").unwrap())
            .collect();
        assert_eq!(deltas, vec![2, 3, 4], "wrapped by one, order preserved");
        assert_eq!(reporter.latest().unwrap().counter_delta("c"), Some(4));
    }

    #[test]
    fn degenerate_interval_yields_no_rate_and_no_absurd_render() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let mut reporter = Reporter::new(4);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        counter.add(1_000_000);
        // a zero-length interval: two back-to-back snapshots
        let delta = reporter
            .tick(registry.snapshot(), Duration::ZERO)
            .unwrap()
            .clone();
        assert_eq!(delta.counter_delta("c"), Some(1_000_000), "delta survives");
        assert_eq!(delta.counter_rate("c"), None, "no rate over zero time");
        assert_eq!(delta.interval_secs(), 0.0);
        let text = delta.render_text();
        assert!(text.contains("+1000000"), "{text}");
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
        // just under the floor is still degenerate; at the floor it isn't
        counter.add(10);
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_nanos(999))
            .unwrap()
            .clone();
        assert_eq!(delta.counter_rate("c"), None);
        counter.add(10);
        let delta = reporter
            .tick(
                registry.snapshot(),
                Duration::from_nanos(SnapshotDelta::MIN_RATE_INTERVAL_NS),
            )
            .unwrap()
            .clone();
        let rate = delta.counter_rate("c").unwrap();
        assert!(rate.is_finite() && rate > 0.0);
    }

    #[test]
    fn quiet_interval_detection_and_new_metric_baseline() {
        let registry = Registry::new();
        registry.counter("c").add(3);
        let mut reporter = Reporter::new(4);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_secs(1))
            .unwrap();
        assert!(delta.is_quiet(), "nothing moved");
        assert_eq!(delta.counter_delta("c"), Some(0));
        // a counter born mid-interval counts from zero
        registry.counter("newborn").add(7);
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_secs(1))
            .unwrap()
            .clone();
        assert_eq!(delta.counter_delta("newborn"), Some(7));
        assert!(!delta.is_quiet());
    }

    #[test]
    fn gauge_levels_and_movement() {
        let registry = Registry::new();
        let gauge = registry.gauge("depth");
        gauge.set(10);
        let mut reporter = Reporter::new(4);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        gauge.set(4);
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_secs(1))
            .unwrap();
        assert_eq!(delta.gauge_level("depth"), Some(4));
        assert_eq!(delta.gauges[0].delta, -6);
    }

    #[test]
    fn render_text_reports_rates_and_windowed_quantiles() {
        let registry = Registry::new();
        registry.counter("engine.queries_served").add(100);
        registry.histogram("engine.query_ns").record(2_000_000);
        let mut reporter = Reporter::new(4);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        registry.counter("engine.queries_served").add(50);
        registry.histogram("engine.query_ns").record(4_000_000);
        let text = reporter
            .tick(registry.snapshot(), Duration::from_secs(5))
            .unwrap()
            .render_text();
        assert!(text.contains("interval 5.00s"), "{text}");
        assert!(text.contains("+50"), "{text}");
        assert!(text.contains("10.0/s"), "{text}");
        assert!(text.contains("n=1"), "{text}");
        assert!(text.contains("ms"), "windowed latency in adaptive units");
    }

    #[test]
    fn delta_serde_round_trips() {
        let registry = Registry::new();
        registry.counter("c").add(1);
        registry.gauge("g").set(2);
        registry.histogram("h").record(3);
        let mut reporter = Reporter::new(4);
        reporter.tick(registry.snapshot(), Duration::from_secs(1));
        registry.counter("c").add(1);
        let delta = reporter
            .tick(registry.snapshot(), Duration::from_secs(1))
            .unwrap();
        let json = serde_json::to_string(delta).unwrap();
        let back: SnapshotDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(*delta, back);
    }
}
