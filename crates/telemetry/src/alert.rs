//! Declarative alerting over reporter deltas and health verdicts.
//!
//! The reporter ([`crate::Reporter`]) turns cumulative metrics into
//! per-interval signal; this module turns that signal into *detection*: a
//! set of [`AlertRule`]s is evaluated once per reporter interval against
//! the fresh [`SnapshotDelta`] (and, for verdict rules, the engine's
//! per-column health labels), each rule runs a small
//! pending → firing → resolved state machine with
//! for-N-consecutive-intervals semantics, and every transition is recorded
//! in a bounded [`AlertEvent`] journal.
//!
//! Like the rest of the crate, the engine here is deliberately passive and
//! engine-agnostic: it holds no clock (time is the caller's evaluation
//! cadence, counted in ticks), knows no engine types (health verdicts
//! arrive as plain [`HealthSignal`] labels), and *executes* nothing — a
//! rule that transitions to firing hands its [`AlertAction`] back to the
//! caller, which is where self-healing (an index rebuild, a forced
//! compaction) actually happens.

use crate::report::SnapshotDelta;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Default [`AlertConfig::journal_capacity`]: alert transitions retained.
pub const DEFAULT_ALERT_JOURNAL_CAPACITY: usize = 256;

/// One column's health verdict in engine-agnostic form (the telemetry
/// crate knows no core types): `table`/`column` name the column, `verdict`
/// is the engine's lowercase label (`"converging"`, `"converged"`,
/// `"stalled"`, `"regressing"`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSignal {
    /// Table the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Lowercase verdict label.
    pub verdict: String,
}

impl HealthSignal {
    /// Build a signal from its three labels.
    pub fn new(
        table: impl Into<String>,
        column: impl Into<String>,
        verdict: impl Into<String>,
    ) -> Self {
        HealthSignal {
            table: table.into(),
            column: column.into(),
            verdict: verdict.into(),
        }
    }

    /// The column's full `table.column` spelling.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.table, self.column)
    }
}

/// What an [`AlertRule`] watches. Conditions over metrics that are absent
/// from the evaluated interval simply do not breach (a rule about a
/// counter the process never registers stays idle forever, it does not
/// error).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlertCondition {
    /// The named counter's per-second rate over the interval exceeds
    /// `per_second`. Degenerate (near-zero-length) intervals produce no
    /// rate at all, so they can neither breach nor heal a rule falsely.
    CounterRateAbove {
        /// Registry counter name.
        counter: String,
        /// Exclusive rate threshold, events per second.
        per_second: f64,
    },
    /// The named gauge's level at the end of the interval exceeds `level`.
    GaugeAbove {
        /// Registry gauge name.
        gauge: String,
        /// Exclusive level threshold.
        level: i64,
    },
    /// The named *windowed* histogram's quantile over this interval's
    /// observations exceeds `threshold` (in the histogram's recorded
    /// units, e.g. nanoseconds for `*_ns`). An interval with no
    /// observations has no quantile and does not breach.
    HistogramQuantileAbove {
        /// Registry histogram name.
        histogram: String,
        /// Quantile in `0.0..=1.0` (e.g. `0.99`).
        quantile: f64,
        /// Exclusive threshold in recorded units.
        threshold: u64,
    },
    /// Some column's health verdict is one of `verdicts`. `column` of
    /// `None` matches every reported column; `Some("table.column")` (or a
    /// bare column name) pins the rule to one column.
    HealthVerdictIs {
        /// Qualified (`table.column`) or bare column name; `None` = any.
        column: Option<String>,
        /// Lowercase verdict labels that count as a breach
        /// (e.g. `["stalled", "regressing"]`).
        verdicts: Vec<String>,
    },
}

/// One interval's breach evidence: what was observed, and (for verdict
/// conditions) which columns matched.
struct Breach {
    observed: String,
    columns: Vec<String>,
}

impl AlertCondition {
    /// Check the condition against one interval; `None` means healthy (or
    /// the watched metric is absent).
    fn check(&self, delta: &SnapshotDelta, health: &[HealthSignal]) -> Option<Breach> {
        match self {
            AlertCondition::CounterRateAbove {
                counter,
                per_second,
            } => {
                let rate = delta.counter_rate(counter)?;
                (rate > *per_second).then(|| Breach {
                    observed: format!("{counter} rate {rate:.1}/s > {per_second:.1}/s"),
                    columns: Vec::new(),
                })
            }
            AlertCondition::GaugeAbove { gauge, level } => {
                let observed = delta.gauge_level(gauge)?;
                (observed > *level).then(|| Breach {
                    observed: format!("{gauge} level {observed} > {level}"),
                    columns: Vec::new(),
                })
            }
            AlertCondition::HistogramQuantileAbove {
                histogram,
                quantile,
                threshold,
            } => {
                let windowed = delta.histogram(histogram)?;
                let observed = windowed.quantile(*quantile)?;
                (observed > *threshold).then(|| Breach {
                    observed: format!(
                        "{histogram} p{:.0} {observed} > {threshold}",
                        quantile * 100.0
                    ),
                    columns: Vec::new(),
                })
            }
            AlertCondition::HealthVerdictIs { column, verdicts } => {
                let matched: Vec<String> = health
                    .iter()
                    .filter(|signal| match column {
                        None => true,
                        Some(want) => signal.qualified() == *want || signal.column == *want,
                    })
                    .filter(|signal| {
                        verdicts
                            .iter()
                            .any(|v| v.eq_ignore_ascii_case(&signal.verdict))
                    })
                    .map(|signal| signal.qualified())
                    .collect();
                (!matched.is_empty()).then(|| Breach {
                    observed: format!("[{}] verdict in {verdicts:?}", matched.join(", ")),
                    columns: matched,
                })
            }
        }
    }

    /// True when evaluating this condition needs health signals at all
    /// (lets the caller skip deriving them for metric-only rule sets).
    pub fn wants_health(&self) -> bool {
        matches!(self, AlertCondition::HealthVerdictIs { .. })
    }
}

/// What the caller should do when a rule transitions to firing. The alert
/// engine only *reports* the action (via [`FiredAlert`]); execution —
/// and the meaning of each variant — belongs to the embedding engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertAction {
    /// Record the transition in the journal; take no further action.
    Log,
    /// Rebuild the named column's index (`Some("table.column")`), or —
    /// with `None` — the index of every column that breached the rule's
    /// verdict predicate this interval.
    RefreshIndex(Option<String>),
    /// Request an eager compaction pass from the maintenance scheduler.
    TriggerCompaction,
}

/// A declarative alert rule: a named condition, how many consecutive
/// breached intervals arm it, how many healthy intervals clear it, and
/// what to do when it fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Unique rule name (journal entries and wire replies carry it).
    pub name: String,
    /// What the rule watches.
    pub condition: AlertCondition,
    /// Consecutive breached intervals before the rule fires (min 1; with
    /// 1 the rule skips pending and fires on the first breach).
    pub for_intervals: u32,
    /// Consecutive healthy intervals before a firing rule resolves
    /// (min 1).
    pub recovery_intervals: u32,
    /// Executed (by the caller) when the rule transitions to firing.
    pub action: AlertAction,
}

impl AlertRule {
    /// A rule with defaults: fire after 1 breached interval, resolve
    /// after 1 healthy interval, action [`AlertAction::Log`].
    pub fn new(name: impl Into<String>, condition: AlertCondition) -> Self {
        AlertRule {
            name: name.into(),
            condition,
            for_intervals: 1,
            recovery_intervals: 1,
            action: AlertAction::Log,
        }
    }

    /// Require `n` consecutive breached intervals before firing (min 1).
    pub fn for_intervals(mut self, n: u32) -> Self {
        self.for_intervals = n.max(1);
        self
    }

    /// Require `n` consecutive healthy intervals before resolving (min 1).
    pub fn recovery_intervals(mut self, n: u32) -> Self {
        self.recovery_intervals = n.max(1);
        self
    }

    /// Attach the action to execute on the idle/pending → firing
    /// transition.
    pub fn action(mut self, action: AlertAction) -> Self {
        self.action = action;
        self
    }
}

/// The rule set plus journal sizing handed to [`AlertEngine::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertConfig {
    /// Rules evaluated every interval, in order.
    pub rules: Vec<AlertRule>,
    /// Alert transitions retained in the journal (min 1; defaults to
    /// [`DEFAULT_ALERT_JOURNAL_CAPACITY`]).
    pub journal_capacity: usize,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            rules: Vec::new(),
            journal_capacity: DEFAULT_ALERT_JOURNAL_CAPACITY,
        }
    }
}

impl AlertConfig {
    /// An empty configuration (no rules, default journal capacity).
    pub fn new() -> Self {
        AlertConfig::default()
    }

    /// Append a rule.
    pub fn rule(mut self, rule: AlertRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Override the journal capacity (min 1).
    pub fn journal_capacity(mut self, events: usize) -> Self {
        self.journal_capacity = events;
        self
    }
}

/// A rule's position in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertState {
    /// Healthy: no current breach streak.
    Idle,
    /// Breaching, but for fewer than `for_intervals` consecutive
    /// intervals.
    Pending,
    /// Breached `for_intervals` consecutive intervals; not yet recovered.
    Firing,
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertState::Idle => "idle",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        })
    }
}

/// Which transition an [`AlertEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertEventKind {
    /// Idle → pending: first breached interval of a streak.
    Pending,
    /// Pending (or idle, with `for_intervals` 1) → firing.
    Firing,
    /// Firing → idle after `recovery_intervals` healthy intervals.
    Resolved,
    /// Pending → idle: the breach streak broke before the rule fired.
    Cancelled,
}

impl fmt::Display for AlertEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertEventKind::Pending => "pending",
            AlertEventKind::Firing => "firing",
            AlertEventKind::Resolved => "resolved",
            AlertEventKind::Cancelled => "cancelled",
        })
    }
}

/// One recorded state transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Rule that transitioned.
    pub rule: String,
    /// Which transition.
    pub kind: AlertEventKind,
    /// Evaluation tick (1-based count of [`AlertEngine::evaluate`] calls)
    /// at which the transition happened — the engine holds no clock.
    pub tick: u64,
    /// Human-readable evidence ("server.requests_shed rate 120.0/s >
    /// 50.0/s", or "recovered after 2 healthy intervals").
    pub observed: String,
    /// Columns that matched a verdict predicate (empty for metric rules).
    pub columns: Vec<String>,
}

/// One rule's live status, for operator surfaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertStatus {
    /// Rule name.
    pub rule: String,
    /// Current state.
    pub state: AlertState,
    /// Length of the current consecutive-breach streak.
    pub consecutive_breaches: u32,
    /// Healthy intervals accumulated toward recovery (firing rules only).
    pub healthy_intervals: u32,
    /// Evidence from the most recent breach (empty if never breached).
    pub observed: String,
    /// Times the rule has transitioned to firing since startup.
    pub times_fired: u64,
}

/// A rule that transitioned to firing this tick, with the action the
/// caller should now execute.
#[derive(Debug, Clone, PartialEq)]
pub struct FiredAlert {
    /// Rule name.
    pub rule: String,
    /// The rule's configured action.
    pub action: AlertAction,
    /// Columns that matched a verdict predicate (empty for metric rules).
    pub columns: Vec<String>,
}

/// Per-rule evaluation state.
#[derive(Debug)]
struct RuleState {
    rule: AlertRule,
    state: AlertState,
    consecutive: u32,
    healthy: u32,
    observed: String,
    times_fired: u64,
}

/// Evaluates a rule set once per reporter interval and journals every
/// state transition. Not internally synchronized — wrap in a mutex to
/// share.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<RuleState>,
    journal: VecDeque<AlertEvent>,
    journal_capacity: usize,
    tick: u64,
}

impl AlertEngine {
    /// Build the engine from a configuration.
    pub fn new(config: AlertConfig) -> Self {
        AlertEngine {
            rules: config
                .rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    state: AlertState::Idle,
                    consecutive: 0,
                    healthy: 0,
                    observed: String::new(),
                    times_fired: 0,
                })
                .collect(),
            journal: VecDeque::new(),
            journal_capacity: config.journal_capacity.max(1),
            tick: 0,
        }
    }

    /// True when no rules are configured (evaluation is a no-op).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True when any rule needs health signals — lets the caller skip
    /// deriving per-column health for metric-only rule sets.
    pub fn wants_health(&self) -> bool {
        self.rules.iter().any(|r| r.rule.condition.wants_health())
    }

    /// Evaluations run so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Evaluate every rule against one completed interval. Transitions are
    /// journaled; rules that newly entered firing come back as
    /// [`FiredAlert`]s for the caller to act on.
    pub fn evaluate(&mut self, delta: &SnapshotDelta, health: &[HealthSignal]) -> Vec<FiredAlert> {
        self.tick += 1;
        let tick = self.tick;
        let mut fired = Vec::new();
        let mut events = Vec::new();
        for rs in &mut self.rules {
            match rs.rule.condition.check(delta, health) {
                Some(breach) => {
                    rs.observed = breach.observed;
                    rs.healthy = 0;
                    match rs.state {
                        AlertState::Idle | AlertState::Pending => {
                            rs.consecutive = rs.consecutive.saturating_add(1);
                            if rs.consecutive >= rs.rule.for_intervals {
                                rs.state = AlertState::Firing;
                                rs.times_fired += 1;
                                events.push(AlertEvent {
                                    rule: rs.rule.name.clone(),
                                    kind: AlertEventKind::Firing,
                                    tick,
                                    observed: rs.observed.clone(),
                                    columns: breach.columns.clone(),
                                });
                                fired.push(FiredAlert {
                                    rule: rs.rule.name.clone(),
                                    action: rs.rule.action.clone(),
                                    columns: breach.columns,
                                });
                            } else if rs.state == AlertState::Idle {
                                rs.state = AlertState::Pending;
                                events.push(AlertEvent {
                                    rule: rs.rule.name.clone(),
                                    kind: AlertEventKind::Pending,
                                    tick,
                                    observed: rs.observed.clone(),
                                    columns: breach.columns,
                                });
                            }
                        }
                        AlertState::Firing => {
                            // still breaching: recovery progress (if any)
                            // was reset above; nothing to journal
                            rs.consecutive = rs.consecutive.saturating_add(1);
                        }
                    }
                }
                None => match rs.state {
                    AlertState::Idle => {}
                    AlertState::Pending => {
                        rs.state = AlertState::Idle;
                        rs.consecutive = 0;
                        events.push(AlertEvent {
                            rule: rs.rule.name.clone(),
                            kind: AlertEventKind::Cancelled,
                            tick,
                            observed: format!(
                                "breach streak broke before {} intervals",
                                rs.rule.for_intervals
                            ),
                            columns: Vec::new(),
                        });
                    }
                    AlertState::Firing => {
                        rs.healthy = rs.healthy.saturating_add(1);
                        if rs.healthy >= rs.rule.recovery_intervals {
                            rs.state = AlertState::Idle;
                            rs.consecutive = 0;
                            let healthy = rs.healthy;
                            rs.healthy = 0;
                            events.push(AlertEvent {
                                rule: rs.rule.name.clone(),
                                kind: AlertEventKind::Resolved,
                                tick,
                                observed: format!("recovered after {healthy} healthy intervals"),
                                columns: Vec::new(),
                            });
                        }
                    }
                },
            }
        }
        for event in events {
            if self.journal.len() == self.journal_capacity {
                self.journal.pop_front();
            }
            self.journal.push_back(event);
        }
        fired
    }

    /// Every rule's live status, in configuration order.
    pub fn status(&self) -> Vec<AlertStatus> {
        self.rules
            .iter()
            .map(|rs| AlertStatus {
                rule: rs.rule.name.clone(),
                state: rs.state,
                consecutive_breaches: rs.consecutive,
                healthy_intervals: rs.healthy,
                observed: rs.observed.clone(),
                times_fired: rs.times_fired,
            })
            .collect()
    }

    /// The journal, oldest first (bounded by
    /// [`AlertConfig::journal_capacity`]).
    pub fn events(&self) -> Vec<AlertEvent> {
        self.journal.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CounterDelta, GaugeDelta};
    use crate::HistogramSnapshot;

    /// A one-second interval in which `counter` moved by `delta`.
    fn delta_with_counter(counter: &str, delta: u64) -> SnapshotDelta {
        SnapshotDelta {
            interval_ns: 1_000_000_000,
            counters: vec![CounterDelta {
                name: counter.into(),
                delta,
            }],
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    fn quiet() -> SnapshotDelta {
        delta_with_counter("server.requests_shed", 0)
    }

    fn shed_rule(for_intervals: u32, recovery: u32) -> AlertRule {
        AlertRule::new(
            "shed-spike",
            AlertCondition::CounterRateAbove {
                counter: "server.requests_shed".into(),
                per_second: 10.0,
            },
        )
        .for_intervals(for_intervals)
        .recovery_intervals(recovery)
    }

    fn states(engine: &AlertEngine) -> Vec<AlertState> {
        engine.status().into_iter().map(|s| s.state).collect()
    }

    #[test]
    fn pending_then_firing_then_resolved() {
        let mut engine = AlertEngine::new(AlertConfig::new().rule(shed_rule(2, 2)));
        let hot = delta_with_counter("server.requests_shed", 100);
        assert!(engine.evaluate(&hot, &[]).is_empty(), "first breach arms");
        assert_eq!(states(&engine), vec![AlertState::Pending]);
        let fired = engine.evaluate(&hot, &[]);
        assert_eq!(fired.len(), 1, "second consecutive breach fires");
        assert_eq!(fired[0].rule, "shed-spike");
        assert_eq!(states(&engine), vec![AlertState::Firing]);
        // one healthy interval is not recovery yet
        assert!(engine.evaluate(&quiet(), &[]).is_empty());
        assert_eq!(states(&engine), vec![AlertState::Firing]);
        assert!(engine.evaluate(&quiet(), &[]).is_empty());
        assert_eq!(states(&engine), vec![AlertState::Idle]);
        let kinds: Vec<AlertEventKind> = engine.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AlertEventKind::Pending,
                AlertEventKind::Firing,
                AlertEventKind::Resolved
            ]
        );
    }

    #[test]
    fn broken_streak_cancels_pending_and_restarts_the_count() {
        let mut engine = AlertEngine::new(AlertConfig::new().rule(shed_rule(3, 1)));
        let hot = delta_with_counter("server.requests_shed", 100);
        engine.evaluate(&hot, &[]);
        engine.evaluate(&hot, &[]);
        assert_eq!(states(&engine), vec![AlertState::Pending]);
        engine.evaluate(&quiet(), &[]);
        assert_eq!(states(&engine), vec![AlertState::Idle]);
        // two more breaches are a fresh streak of 2, still short of 3
        engine.evaluate(&hot, &[]);
        let fired = engine.evaluate(&hot, &[]);
        assert!(fired.is_empty(), "streak restarted from zero");
        let fired = engine.evaluate(&hot, &[]);
        assert_eq!(fired.len(), 1);
        let kinds: Vec<AlertEventKind> = engine.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AlertEventKind::Pending,
                AlertEventKind::Cancelled,
                AlertEventKind::Pending,
                AlertEventKind::Firing
            ]
        );
    }

    #[test]
    fn breach_mid_recovery_resets_the_healthy_count() {
        let mut engine = AlertEngine::new(AlertConfig::new().rule(shed_rule(1, 3)));
        let hot = delta_with_counter("server.requests_shed", 100);
        assert_eq!(engine.evaluate(&hot, &[]).len(), 1, "for=1 fires at once");
        engine.evaluate(&quiet(), &[]);
        engine.evaluate(&quiet(), &[]);
        assert_eq!(states(&engine), vec![AlertState::Firing]);
        // a breach two intervals into recovery starts recovery over
        assert!(engine.evaluate(&hot, &[]).is_empty(), "already firing");
        engine.evaluate(&quiet(), &[]);
        engine.evaluate(&quiet(), &[]);
        assert_eq!(states(&engine), vec![AlertState::Firing]);
        engine.evaluate(&quiet(), &[]);
        assert_eq!(states(&engine), vec![AlertState::Idle]);
    }

    #[test]
    fn absent_metric_never_breaches_or_heals_falsely() {
        let mut engine = AlertEngine::new(AlertConfig::new().rule(shed_rule(1, 1)));
        let unrelated = delta_with_counter("engine.queries_served", 1_000_000);
        for _ in 0..5 {
            assert!(engine.evaluate(&unrelated, &[]).is_empty());
        }
        assert_eq!(states(&engine), vec![AlertState::Idle]);
        assert!(engine.events().is_empty());
    }

    #[test]
    fn zero_length_interval_cannot_fire_a_rate_rule() {
        let mut engine = AlertEngine::new(AlertConfig::new().rule(shed_rule(1, 1)));
        let mut degenerate = delta_with_counter("server.requests_shed", u64::MAX);
        degenerate.interval_ns = 0;
        assert!(
            engine.evaluate(&degenerate, &[]).is_empty(),
            "no rate over a degenerate interval, so no breach"
        );
        assert_eq!(states(&engine), vec![AlertState::Idle]);
    }

    #[test]
    fn gauge_and_quantile_conditions_breach_on_threshold_crossings() {
        let gauge_rule = AlertRule::new(
            "deep-queue",
            AlertCondition::GaugeAbove {
                gauge: "server.in_flight".into(),
                level: 10,
            },
        );
        let quantile_rule = AlertRule::new(
            "slow-fsync",
            AlertCondition::HistogramQuantileAbove {
                histogram: "wal.fsync_ns".into(),
                quantile: 0.99,
                threshold: 1_000_000,
            },
        );
        let mut engine = AlertEngine::new(AlertConfig::new().rule(gauge_rule).rule(quantile_rule));
        let mut buckets = vec![0u64; crate::HISTOGRAM_BUCKETS];
        *buckets.last_mut().unwrap() = 4; // four huge observations
        let delta = SnapshotDelta {
            interval_ns: 1_000_000_000,
            counters: Vec::new(),
            gauges: vec![GaugeDelta {
                name: "server.in_flight".into(),
                level: 50,
                delta: 50,
            }],
            histograms: vec![HistogramSnapshot {
                name: "wal.fsync_ns".into(),
                count: 4,
                sum: 4 << 60,
                buckets,
            }],
        };
        let fired = engine.evaluate(&delta, &[]);
        let names: Vec<&str> = fired.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(names, vec!["deep-queue", "slow-fsync"]);
        // an empty-window histogram has no quantile: no breach, heals
        let empty = SnapshotDelta {
            interval_ns: 1_000_000_000,
            counters: Vec::new(),
            gauges: vec![GaugeDelta {
                name: "server.in_flight".into(),
                level: 0,
                delta: -50,
            }],
            histograms: vec![HistogramSnapshot {
                name: "wal.fsync_ns".into(),
                count: 0,
                sum: 0,
                buckets: vec![0u64; crate::HISTOGRAM_BUCKETS],
            }],
        };
        engine.evaluate(&empty, &[]);
        assert_eq!(states(&engine), vec![AlertState::Idle, AlertState::Idle]);
    }

    #[test]
    fn verdict_rule_matches_any_or_pinned_column_and_reports_them() {
        let any = AlertRule::new(
            "stalled-any",
            AlertCondition::HealthVerdictIs {
                column: None,
                verdicts: vec!["stalled".into(), "regressing".into()],
            },
        )
        .action(AlertAction::RefreshIndex(None));
        let pinned = AlertRule::new(
            "stalled-orders",
            AlertCondition::HealthVerdictIs {
                column: Some("orders.o_key".into()),
                verdicts: vec!["stalled".into()],
            },
        );
        let mut engine = AlertEngine::new(AlertConfig::new().rule(any).rule(pinned));
        let health = vec![
            HealthSignal::new("data", "k", "stalled"),
            HealthSignal::new("orders", "o_key", "converging"),
        ];
        let fired = engine.evaluate(&quiet(), &health);
        assert_eq!(fired.len(), 1, "pinned column is converging");
        assert_eq!(fired[0].rule, "stalled-any");
        assert_eq!(fired[0].columns, vec!["data.k".to_string()]);
        assert_eq!(fired[0].action, AlertAction::RefreshIndex(None));
        // now the pinned column stalls too
        let health = vec![HealthSignal::new("orders", "o_key", "stalled")];
        let fired = engine.evaluate(&quiet(), &health);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "stalled-orders");
        assert_eq!(fired[0].columns, vec!["orders.o_key".to_string()]);
    }

    #[test]
    fn journal_is_bounded_and_evicts_oldest() {
        let mut engine =
            AlertEngine::new(AlertConfig::new().rule(shed_rule(1, 1)).journal_capacity(3));
        let hot = delta_with_counter("server.requests_shed", 100);
        // each hot/quiet pair journals a Firing + a Resolved
        for _ in 0..4 {
            engine.evaluate(&hot, &[]);
            engine.evaluate(&quiet(), &[]);
        }
        let events = engine.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].tick, 6, "oldest events evicted first");
        assert_eq!(events[2].tick, 8);
    }

    #[test]
    fn wants_health_only_with_verdict_rules() {
        let metric_only = AlertEngine::new(AlertConfig::new().rule(shed_rule(1, 1)));
        assert!(!metric_only.wants_health());
        assert!(metric_only.wants_health() || !metric_only.is_empty());
        let with_verdict = AlertEngine::new(AlertConfig::new().rule(AlertRule::new(
            "stalled",
            AlertCondition::HealthVerdictIs {
                column: None,
                verdicts: vec!["stalled".into()],
            },
        )));
        assert!(with_verdict.wants_health());
    }

    #[test]
    fn config_events_and_status_serde_round_trip() {
        let config = AlertConfig::new()
            .rule(shed_rule(2, 3).action(AlertAction::TriggerCompaction))
            .journal_capacity(16);
        let json = serde_json::to_string(&config).unwrap();
        let back: AlertConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        let mut engine = AlertEngine::new(config);
        let hot = delta_with_counter("server.requests_shed", 100);
        engine.evaluate(&hot, &[]);
        let (events, statuses) = (engine.events(), engine.status());
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<AlertEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(events, back);
        let json = serde_json::to_string(&statuses).unwrap();
        let back: Vec<AlertStatus> = serde_json::from_str(&json).unwrap();
        assert_eq!(statuses, back);
    }
}
