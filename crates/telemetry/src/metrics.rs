//! The lock-free metrics registry: counters, gauges, log₂ histograms, and
//! their mergeable serde-serializable snapshots.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of buckets in a [`Histogram`]: bucket 0 holds the value 0, bucket
/// `i` (1..=64) holds values in `[2^(i-1), 2^i)` — every `u64` has exactly
/// one bucket, so recording never saturates or clips.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonic event counter. Updates are single relaxed atomic adds —
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depths, in-flight requests, bytes
/// held). Unlike a [`Counter`] it can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the level outright.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Move the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂-scale histogram for latencies (nanoseconds) and
/// sizes (bytes, rows).
///
/// Recording is lock-free: one relaxed add into the value's bucket and one
/// into the running sum. The log₂ scale trades precision for a fixed
/// 65-slot footprint — percentile readout reports the *upper bound* of the
/// qualifying bucket, i.e. within 2× of the true quantile, which is the
/// right resolution for "did p99 double?" questions.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `value`: 0 for 0, otherwise its bit length.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Largest value bucket `i` can hold (the value percentiles report).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy (name is supplied by the registry; standalone
    /// histograms pick their own).
    pub fn snapshot(&self, name: impl Into<String>) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.into(),
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// One counter's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registry name (e.g. `engine.queries_served`).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge's point-in-time level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registry name.
    pub name: String,
    /// Level at snapshot time.
    pub value: i64,
}

/// One histogram's point-in-time distribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registry name (e.g. `server.query_ns`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket counts, [`HISTOGRAM_BUCKETS`] entries (log₂ scale).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty named snapshot (the identity for [`HistogramSnapshot::merge`]).
    pub fn empty(name: impl Into<String>) -> Self {
        HistogramSnapshot {
            name: name.into(),
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// The value below which a fraction `q` (0.0..=1.0) of observations
    /// fall, reported as the upper bound of the qualifying log₂ bucket.
    /// `None` when empty.
    ///
    /// # Error bound
    ///
    /// The reported value `r` always satisfies `t <= r < 2·t` where `t` is
    /// the true quantile (for `t >= 1`; the value 0 has its own exact
    /// bucket). In other words the estimate is never below the truth and
    /// strictly less than 2× above it — the log₂ buckets trade per-value
    /// precision for a fixed footprint, which is the right resolution for
    /// "did p99 double?" questions but not for micro-benchmarks.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Exact arithmetic mean of the recorded values. `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Mean as a whole number (`sum / count`, truncating). Unlike
    /// [`HistogramSnapshot::quantile`] this is *exact* up to the integer
    /// truncation, because `sum` accumulates raw values, not bucket bounds.
    /// Interval reporters use it for "average latency this window" lines.
    /// `None` when empty.
    pub fn approx_mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Fold another snapshot of the *same metric* in (bucket-wise sum).
    /// Merging differently-named snapshots is a caller bug and panics.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.name, other.name,
            "merging histograms of different metrics"
        );
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// A mergeable point-in-time copy of a whole [`Registry`] (or a union of
/// several). Entries are sorted by name; serde round-trips through the
/// vendored serde/serde_json.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Level of the named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Union with another snapshot: counters with the same name add,
    /// gauges take the other side's level (it is the newer reading),
    /// histograms merge bucket-wise; unmatched names are appended. The
    /// result stays sorted by name.
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => mine.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Human-readable multi-line render (the `STATS` debug view):
    /// counters and gauges one per line, histograms with count/mean/p50/
    /// p90/p99. Latency metrics (named `*_ns`) render in adaptive units.
    ///
    /// Output is deterministic: each section is rendered in name order even
    /// when the snapshot itself was assembled out of order (hand-built or
    /// merged snapshots), so successive renders diff cleanly.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<_> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        for c in counters {
            let _ = writeln!(out, "{:<44} {}", c.name, c.value);
        }
        for g in gauges {
            let _ = writeln!(out, "{:<44} {}", g.name, g.value);
        }
        for h in histograms {
            let nanos = h.name.ends_with("_ns");
            let scaled = |v: u64| {
                if nanos {
                    format_ns(v)
                } else {
                    v.to_string()
                }
            };
            let _ = writeln!(
                out,
                "{:<44} count={} mean={} p50={} p90={} p99={}",
                h.name,
                h.count,
                h.mean()
                    .map(|m| scaled(m as u64))
                    .unwrap_or_else(|| "-".into()),
                h.p50().map(scaled).unwrap_or_else(|| "-".into()),
                h.p90().map(scaled).unwrap_or_else(|| "-".into()),
                h.p99().map(scaled).unwrap_or_else(|| "-".into()),
            );
        }
        out
    }
}

/// Render a nanosecond reading with an adaptive unit.
pub(crate) fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// A registry of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a short mutex and is
/// idempotent — the same name always returns the same instrument — so
/// subsystems grab `Arc` handles once at construction and update them
/// lock-free forever after. Names are dotted paths by convention
/// (`engine.queries_served`, `wal.fsync_ns`, `server.requests_shed`).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry lock poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name.clone()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_u64_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // every bucket's upper bound maps back into that bucket
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_percentiles_bound_the_true_quantile_within_2x() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 1000);
        // true p50 = 500 → bucket [256,512) upper bound 511
        assert_eq!(snap.p50(), Some(511));
        // true p99 = 990 → bucket [512,1024) upper bound 1023
        assert_eq!(snap.p99(), Some(1023));
        assert_eq!(snap.mean(), Some(500.5));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let snap = Histogram::new().snapshot("t");
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap, HistogramSnapshot::empty("t"));
    }

    #[test]
    fn histogram_merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut merged = a.snapshot("m");
        merged.merge(&b.snapshot("m"));
        assert_eq!(merged.count, 200);
        let all = Histogram::new();
        for v in 0..100u64 {
            all.record(v);
            all.record(v * 1000);
        }
        assert_eq!(merged, all.snapshot("m"));
    }

    #[test]
    #[should_panic(expected = "different metrics")]
    fn merging_different_metrics_panics() {
        let mut a = HistogramSnapshot::empty("a");
        a.merge(&HistogramSnapshot::empty("b"));
    }

    #[test]
    fn registry_is_idempotent_and_snapshots_sorted() {
        let registry = Registry::new();
        let c1 = registry.counter("z.late");
        let c2 = registry.counter("z.late");
        assert!(Arc::ptr_eq(&c1, &c2), "same name, same counter");
        c1.add(3);
        c2.incr();
        registry.counter("a.early").add(7);
        registry.gauge("g.depth").set(-2);
        registry.histogram("h.lat_ns").record(1500);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["a.early", "z.late"]
        );
        assert_eq!(snap.counter("z.late"), Some(4));
        assert_eq!(snap.counter("a.early"), Some(7));
        assert_eq!(snap.gauge("g.depth"), Some(-2));
        assert_eq!(snap.histogram("h.lat_ns").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_keeps_sorted_order() {
        let a = Registry::new();
        a.counter("shared").add(5);
        a.counter("only_a").add(1);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("shared").add(7);
        b.counter("only_b").add(2);
        b.histogram("h").record(1000);
        b.gauge("g").set(9);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("shared"), Some(12));
        assert_eq!(merged.counter("only_a"), Some(1));
        assert_eq!(merged.counter("only_b"), Some(2));
        assert_eq!(merged.gauge("g"), Some(9));
        assert_eq!(merged.histogram("h").unwrap().count, 2);
        let names: Vec<_> = merged.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let registry = Registry::new();
        registry.counter("engine.queries_served").add(42);
        registry.histogram("engine.query_ns").record(123_456);
        registry.gauge("server.in_flight").set(3);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let registry = Registry::new();
        registry.counter("engine.queries_served").add(9);
        registry.histogram("server.query_ns").record(2_000_000);
        let text = registry.snapshot().render_text();
        assert!(text.contains("engine.queries_served"));
        assert!(text.contains("9"));
        assert!(text.contains("server.query_ns"));
        assert!(text.contains("ms"), "latency rendered with a unit: {text}");
    }

    #[test]
    fn approx_mean_is_truncating_sum_over_count() {
        let h = Histogram::new();
        h.record(10);
        h.record(11);
        let snap = h.snapshot("t");
        assert_eq!(snap.approx_mean(), Some(10)); // 21 / 2 truncates
        assert_eq!(snap.mean(), Some(10.5));
        assert_eq!(HistogramSnapshot::empty("t").approx_mean(), None);
    }

    #[test]
    fn quantile_error_bound_holds_across_magnitudes() {
        for true_value in [1u64, 7, 100, 4096, 1_000_000, u64::MAX / 2] {
            let h = Histogram::new();
            h.record(true_value);
            let reported = h.snapshot("t").p50().unwrap();
            assert!(reported >= true_value, "never below truth");
            assert!(
                reported / 2 < true_value,
                "strictly under 2x: {reported} vs {true_value}"
            );
        }
    }

    #[test]
    fn render_text_is_deterministic_for_unsorted_snapshots() {
        // hand-assemble a snapshot in reverse name order; render must not
        // depend on insertion order
        let unsorted = Snapshot {
            counters: vec![
                CounterSnapshot {
                    name: "z.counter".into(),
                    value: 2,
                },
                CounterSnapshot {
                    name: "a.counter".into(),
                    value: 1,
                },
            ],
            gauges: vec![
                GaugeSnapshot {
                    name: "z.gauge".into(),
                    value: -1,
                },
                GaugeSnapshot {
                    name: "a.gauge".into(),
                    value: 5,
                },
            ],
            histograms: vec![
                HistogramSnapshot::empty("z.hist"),
                HistogramSnapshot::empty("a.hist"),
            ],
        };
        let mut sorted = unsorted.clone();
        sorted.counters.sort_by(|a, b| a.name.cmp(&b.name));
        sorted.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        sorted.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        assert_ne!(unsorted.counters, sorted.counters, "fixture is unsorted");
        assert_eq!(unsorted.render_text(), sorted.render_text());
        let text = unsorted.render_text();
        let a_pos = text.find("a.counter").unwrap();
        let z_pos = text.find("z.counter").unwrap();
        assert!(a_pos < z_pos, "sections render in name order");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let counter = registry.counter("c");
                    let histogram = registry.histogram("h");
                    for i in 0..10_000u64 {
                        counter.incr();
                        histogram.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(80_000));
        assert_eq!(snap.histogram("h").unwrap().count, 80_000);
    }
}
