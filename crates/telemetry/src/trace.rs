//! Per-query trace recording: a query's lifecycle as typed span events.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// One stage of a query's lifecycle, in execution order. The vocabulary is
/// the adaptive engine's: the *index probe* event carries the paper's
/// per-query refinement measurements (effort delta, piece growth), which is
/// what makes index convergence observable from a live trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpanEvent {
    /// Planning: which predicate drives the query through the adaptive
    /// index, and how selective the planner estimated it to be.
    Plan {
        /// Driver column, `None` for full-table queries.
        driver_column: Option<String>,
        /// Estimated fraction of the key domain the driver predicate
        /// selects (1.0 when the domain is unknown or degenerate).
        estimated_selectivity: f64,
        /// Number of residual (late-materialized) predicates.
        residual_predicates: u64,
    },
    /// The driver predicate answered through the adaptive index — the
    /// refinement step: queries ARE the index-building mechanism, and this
    /// event records how much building this one did.
    IndexProbe {
        /// Driver column name.
        column: String,
        /// Strategy label (`cracking`, `adaptive-merging`, ...).
        strategy: String,
        /// Range probes routed through the index (an `InSet` predicate
        /// probes once per key).
        probes: u64,
        /// Index pieces (cracked partitions / fragments / runs) before the
        /// probe.
        pieces_before: u64,
        /// Pieces after — `pieces_after - pieces_before` is the pieces the
        /// probe created.
        pieces_after: u64,
        /// Cumulative-effort delta the probe spent refining the index
        /// (machine-independent work units). The paper's per-query cost
        /// series, read live.
        effort_delta: u64,
        /// The index was rebuilt from the snapshot first (stale epoch or
        /// missing rows).
        rebuilt: bool,
        /// The probe bypassed the index with a snapshot scan (lagging
        /// reader) — no refinement happened.
        lagging_scan: bool,
    },
    /// Zone-map pruning over the chunked storage layer.
    ZoneMapPrune {
        /// Sealed chunks whose values were actually read.
        chunks_scanned: u64,
        /// Chunks skipped because their zone map proved them empty.
        chunks_pruned: u64,
    },
    /// One residual predicate filtered the candidate positions.
    ResidualFilter {
        /// Residual column name.
        column: String,
        /// Candidate positions entering the filter.
        candidates_in: u64,
        /// Positions surviving it.
        rows_out: u64,
    },
    /// Result materialization (and the optional aggregate).
    Materialize {
        /// Qualifying rows in the result.
        rows: u64,
        /// Whether an aggregate was computed over them.
        aggregated: bool,
    },
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanEvent::Plan {
                driver_column,
                estimated_selectivity,
                residual_predicates,
            } => write!(
                f,
                "plan       driver={} est_selectivity={:.4} residuals={}",
                driver_column.as_deref().unwrap_or("<none>"),
                estimated_selectivity,
                residual_predicates
            ),
            SpanEvent::IndexProbe {
                column,
                strategy,
                probes,
                pieces_before,
                pieces_after,
                effort_delta,
                rebuilt,
                lagging_scan,
            } => write!(
                f,
                "probe      column={column} strategy={strategy} probes={probes} \
                 pieces={pieces_before}->{pieces_after} effort_delta={effort_delta}\
                 {}{}",
                if *rebuilt { " rebuilt" } else { "" },
                if *lagging_scan { " lagging-scan" } else { "" },
            ),
            SpanEvent::ZoneMapPrune {
                chunks_scanned,
                chunks_pruned,
            } => write!(
                f,
                "prune      chunks_scanned={chunks_scanned} chunks_pruned={chunks_pruned}"
            ),
            SpanEvent::ResidualFilter {
                column,
                candidates_in,
                rows_out,
            } => write!(
                f,
                "residual   column={column} candidates={candidates_in} rows_out={rows_out}"
            ),
            SpanEvent::Materialize { rows, aggregated } => {
                write!(f, "materialize rows={rows} aggregated={aggregated}")
            }
        }
    }
}

/// The completed trace of one query: its span events in execution order
/// plus the wall-clock the query took.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Span events in the order they happened.
    pub events: Vec<SpanEvent>,
    /// Wall-clock for the whole query, in nanoseconds.
    pub elapsed_ns: u64,
}

impl QueryTrace {
    /// Total refinement effort this query spent reorganizing indexes (sum
    /// of every probe's `effort_delta`) — one point of the paper's
    /// per-query cost series.
    pub fn refinement_effort(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SpanEvent::IndexProbe { effort_delta, .. } => *effort_delta,
                _ => 0,
            })
            .sum()
    }

    /// Index pieces created by this query (probe growth summed).
    pub fn pieces_created(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SpanEvent::IndexProbe {
                    pieces_before,
                    pieces_after,
                    ..
                } => pieces_after.saturating_sub(*pieces_before),
                _ => 0,
            })
            .sum()
    }

    /// The probe events' `pieces_after` reading, if the query probed an
    /// index (the convergence series README plots).
    pub fn pieces_after(&self) -> Option<u64> {
        self.events.iter().rev().find_map(|e| match e {
            SpanEvent::IndexProbe { pieces_after, .. } => Some(*pieces_after),
            _ => None,
        })
    }

    /// Human-readable multi-line render (one span per line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "total      elapsed={}ns refinement_effort={}\n",
            self.elapsed_ns,
            self.refinement_effort()
        ));
        out
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Collects span events while one query executes; [`TraceRecorder::finish`]
/// seals it into a [`QueryTrace`].
///
/// The recorder is allocated only for traced queries (`explain_profile`);
/// the untraced hot path carries `None` and pays nothing beyond the
/// engine's single enabled-flag load.
#[derive(Debug)]
pub struct TraceRecorder {
    events: Vec<SpanEvent>,
    started: Instant,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// Start recording (starts the query clock).
    pub fn new() -> Self {
        TraceRecorder {
            events: Vec::with_capacity(6),
            started: Instant::now(),
        }
    }

    /// Append one span event.
    pub fn record(&mut self, event: SpanEvent) {
        self.events.push(event);
    }

    /// Stop the clock and seal the trace.
    pub fn finish(self) -> QueryTrace {
        QueryTrace {
            elapsed_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let mut rec = TraceRecorder::new();
        rec.record(SpanEvent::Plan {
            driver_column: Some("ts".into()),
            estimated_selectivity: 0.25,
            residual_predicates: 1,
        });
        rec.record(SpanEvent::IndexProbe {
            column: "ts".into(),
            strategy: "cracking".into(),
            probes: 1,
            pieces_before: 1,
            pieces_after: 3,
            effort_delta: 4096,
            rebuilt: false,
            lagging_scan: false,
        });
        rec.record(SpanEvent::ZoneMapPrune {
            chunks_scanned: 2,
            chunks_pruned: 6,
        });
        rec.record(SpanEvent::ResidualFilter {
            column: "kind".into(),
            candidates_in: 100,
            rows_out: 20,
        });
        rec.record(SpanEvent::Materialize {
            rows: 20,
            aggregated: true,
        });
        rec.finish()
    }

    #[test]
    fn derived_series_read_the_probe_events() {
        let trace = sample();
        assert_eq!(trace.refinement_effort(), 4096);
        assert_eq!(trace.pieces_created(), 2);
        assert_eq!(trace.pieces_after(), Some(3));
        assert_eq!(trace.events.len(), 5);
    }

    #[test]
    fn render_text_lists_every_span_in_order() {
        let text = sample().render_text();
        let plan = text.find("plan").unwrap();
        let probe = text.find("probe").unwrap();
        let prune = text.find("prune").unwrap();
        let materialize = text.find("materialize").unwrap();
        assert!(plan < probe && probe < prune && prune < materialize);
        assert!(text.contains("effort_delta=4096"));
        assert!(text.contains("pieces=1->3"));
    }

    #[test]
    fn trace_serde_round_trips() {
        let trace = sample();
        let json = serde_json::to_string(&trace).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
