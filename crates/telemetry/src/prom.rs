//! Prometheus text exposition for [`Snapshot`]s.
//!
//! [`Snapshot::render_prometheus`] emits the Prometheus text format
//! (version 0.0.4): one `# HELP` and `# TYPE` comment pair per metric
//! family, counters and gauges as single samples, histograms as cumulative
//! `_bucket{le="..."}` series terminated by `le="+Inf"` plus `_sum` and
//! `_count`. Registry names are dotted paths (`engine.queries_served`);
//! Prometheus metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every
//! other character is rewritten to `_` (and a leading digit gets a `_`
//! prefix). The original dotted name is preserved in the `# HELP` text so
//! the mapping stays discoverable from the scrape itself.

use crate::metrics::{bucket_upper_bound, Snapshot};
use std::fmt::Write as _;

/// Rewrite a registry name into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`. Invalid characters become `_`; a name whose
/// first character is a digit is prefixed with `_`; an empty name becomes
/// `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let valid =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else if valid {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a value destined for a `# HELP` line: Prometheus requires `\\`
/// and newline escaping there.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label *value* for the text exposition format: `\\`, `\"` and
/// newlines must be escaped inside the quoted value.
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One labeled sample of a gauge family: `(label name, label value)` pairs
/// plus the sample value. Label names are sanitized and label values
/// escaped at render time, so callers pass raw strings.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSample {
    /// `(name, value)` label pairs, emitted in the given order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Render one complete *labeled* gauge family: a `# HELP`/`# TYPE` pair
/// followed by one sample line per entry, e.g.
/// `aidx_alert_firing{rule="shed-spike"} 2`. The base exposition
/// ([`Snapshot::render_prometheus`]) has no label dimension — registry
/// instruments are flat names — so families whose identity lives in
/// labels (alert states per rule, health verdicts per column) are
/// rendered through this and appended to the scrape body. An empty
/// sample list renders nothing (a family with no series is noise).
pub fn render_labeled_gauge(name: &str, help: &str, samples: &[LabeledSample]) -> String {
    if samples.is_empty() {
        return String::new();
    }
    let name = sanitize_metric_name(name);
    let mut out = String::new();
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} gauge");
    for sample in samples {
        let labels = sample
            .labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric_name(k), escape_label_value(v)))
            .collect::<Vec<_>>()
            .join(",");
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {}", sample.value);
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {}", sample.value);
        }
    }
    out
}

impl Snapshot {
    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Families are emitted in name order (counters, then gauges, then
    /// histograms — each section sorted), so the output is deterministic.
    /// Histograms emit every log₂ bucket cumulatively: `le` carries the
    /// bucket's inclusive upper bound, the final bucket is `le="+Inf"` and
    /// equals `_count`. An empty snapshot renders to an empty string.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        for c in counters {
            let name = sanitize_metric_name(&c.name);
            let _ = writeln!(out, "# HELP {name} aidx counter {}", escape_help(&c.name));
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for g in gauges {
            let name = sanitize_metric_name(&g.name);
            let _ = writeln!(out, "# HELP {name} aidx gauge {}", escape_help(&g.name));
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.value);
        }
        let mut histograms: Vec<_> = self.histograms.iter().collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        for h in histograms {
            let name = sanitize_metric_name(&h.name);
            let _ = writeln!(out, "# HELP {name} aidx histogram {}", escape_help(&h.name));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cumulative += n;
                // the last bucket spans up to u64::MAX — that IS +Inf here
                if i + 1 == h.buckets.len() {
                    break;
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, Registry};

    #[test]
    fn sanitizes_names_to_the_prometheus_charset() {
        assert_eq!(sanitize_metric_name("aidx.wal/fsync"), "aidx_wal_fsync");
        assert_eq!(sanitize_metric_name("engine.query_ns"), "engine_query_ns");
        assert_eq!(sanitize_metric_name("already_fine:x"), "already_fine:x");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("sp ace-dash"), "sp_ace_dash");
        for name in ["aidx.wal/fsync", "9lives", "", "ünïcode"] {
            let s = sanitize_metric_name(name);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(Snapshot::default().render_prometheus(), "");
    }

    #[test]
    fn counters_and_gauges_have_help_type_and_sample_lines() {
        let registry = Registry::new();
        registry.counter("engine.queries_served").add(42);
        registry.gauge("server.in_flight").set(-3);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# HELP engine_queries_served aidx counter engine.queries_served\n"));
        assert!(text.contains("# TYPE engine_queries_served counter\n"));
        assert!(text.contains("engine_queries_served 42\n"));
        assert!(text.contains("# TYPE server_in_flight gauge\n"));
        assert!(text.contains("server_in_flight -3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let registry = Registry::new();
        let h = registry.histogram("engine.query_ns");
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        h.record(1_000_000);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains("# TYPE engine_query_ns histogram\n"));
        // cumulativity: each successive le must carry a >= count
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("engine_query_ns_bucket{le=\"") {
                let (_le, count) = rest.split_once("\"} ").expect("bucket line shape");
                let count: u64 = count.parse().unwrap();
                assert!(count >= last, "cumulative counts never decrease: {line}");
                last = count;
                bucket_lines += 1;
            }
        }
        assert_eq!(
            bucket_lines,
            crate::HISTOGRAM_BUCKETS,
            "one line per bucket"
        );
        assert!(text.contains("engine_query_ns_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("engine_query_ns_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("engine_query_ns_bucket{le=\"3\"} 3\n"));
        // terminal bucket equals _count
        assert!(text.contains("engine_query_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("engine_query_ns_sum 1000004\n"));
        assert!(text.contains("engine_query_ns_count 4\n"));
        let inf_pos = text.find("le=\"+Inf\"").unwrap();
        let last_bucket_pos = text.rfind("_bucket{").unwrap();
        assert!(inf_pos > last_bucket_pos - 1, "+Inf is the terminal bucket");
    }

    #[test]
    fn merge_then_render_equals_render_then_concat_for_disjoint_names() {
        // two snapshots with disjoint, already-ordered name ranges: merging
        // then rendering must equal rendering each and concatenating — the
        // render is purely a function of the (sorted) contents
        let a = Registry::new();
        a.counter("a.hits").add(3);
        let b = Registry::new();
        b.counter("b.hits").add(5);
        let (snap_a, snap_b) = (a.snapshot(), b.snapshot());
        let mut merged = snap_a.clone();
        merged.merge(&snap_b);
        assert_eq!(
            merged.render_prometheus(),
            format!(
                "{}{}",
                snap_a.render_prometheus(),
                snap_b.render_prometheus()
            )
        );
        // and same-name merging adds before rendering (no duplicate family)
        let mut doubled = snap_a.clone();
        doubled.merge(&snap_a);
        assert_eq!(
            doubled.render_prometheus().matches("# TYPE a_hits").count(),
            1
        );
        assert!(doubled.render_prometheus().contains("a_hits 6\n"));
    }

    #[test]
    fn every_non_comment_line_parses_as_name_maybe_labels_value() {
        let registry = Registry::new();
        registry.counter("engine.queries_served").add(1);
        registry.gauge("g").set(2);
        registry.histogram("h_ns").record(77);
        let text = registry.snapshot().render_prometheus();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "value parses: {line}");
            let name = name_and_labels
                .split_once('{')
                .map(|(n, _)| n)
                .unwrap_or(name_and_labels);
            assert_eq!(name, sanitize_metric_name(name), "name is conformant");
        }
    }

    #[test]
    fn labeled_gauge_family_renders_escaped_samples() {
        let text = render_labeled_gauge(
            "aidx.alert_firing",
            "alert state per rule (0 idle, 1 pending, 2 firing)",
            &[
                LabeledSample {
                    labels: vec![("rule".into(), "shed-spike".into())],
                    value: 2.0,
                },
                LabeledSample {
                    labels: vec![("rule".into(), "quo\"te\\back\nline".into())],
                    value: 0.0,
                },
            ],
        );
        assert!(text.contains("# TYPE aidx_alert_firing gauge\n"), "{text}");
        assert!(
            text.contains("aidx_alert_firing{rule=\"shed-spike\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("{rule=\"quo\\\"te\\\\back\\nline\"} 0\n"),
            "label values escaped: {text}"
        );
        // one line per sample plus the two comment lines, no raw newline
        // smuggled through a label value
        assert_eq!(text.lines().count(), 4, "{text}");
        assert_eq!(render_labeled_gauge("empty", "nothing", &[]), "");
        // multi-label samples join with commas
        let text = render_labeled_gauge(
            "aidx.index_health",
            "verdict per column",
            &[LabeledSample {
                labels: vec![
                    ("table".into(), "data".into()),
                    ("column".into(), "k".into()),
                ],
                value: 2.0,
            }],
        );
        assert!(
            text.contains("aidx_index_health{table=\"data\",column=\"k\"} 2\n"),
            "{text}"
        );
    }

    #[test]
    fn hand_built_histogram_snapshot_renders_without_panic() {
        // short bucket vectors (e.g. from older wire peers) must not panic
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![HistogramSnapshot {
                name: "short".into(),
                count: 2,
                sum: 3,
                buckets: vec![1, 1],
            }],
        };
        let text = snap.render_prometheus();
        assert!(text.contains("short_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("short_count 2\n"));
    }
}
