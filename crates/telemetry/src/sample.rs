//! Sampled query tracing: profile every Nth query at near-zero cost.
//!
//! Per-query tracing ([`crate::TraceRecorder`]) is opt-in because it
//! allocates; a production server wants a *standing* trickle of traces
//! instead. [`TraceSampler`] makes the unsampled path as cheap as telemetry
//! gets — one relaxed `fetch_add` and a compare, no allocation, no lock —
//! and routes the 1-in-N sampled traces into two bounded pools: a ring of
//! the most recent traces (what is the engine doing *now*?) and a
//! slowest-K reservoir (what were the worst queries since startup?). Both
//! are only ever touched on the sampled path.

use crate::trace::QueryTrace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Decides which queries get a trace and retains the sampled results.
///
/// Shared freely across sessions/threads: the decision is an atomic
/// counter, retention takes a short mutex only on the sampled (1-in-N)
/// path.
#[derive(Debug)]
pub struct TraceSampler {
    every: u64,
    decisions: AtomicU64,
    sampled: AtomicU64,
    ring_capacity: usize,
    slowest_capacity: usize,
    ring: Mutex<VecDeque<QueryTrace>>,
    slowest: Mutex<Vec<QueryTrace>>,
}

impl TraceSampler {
    /// A sampler tracing every `every`-th query (`0` disables sampling
    /// entirely), keeping at most `ring_capacity` recent traces and the
    /// `slowest_capacity` slowest-by-elapsed traces (each min 1 when
    /// sampling is enabled).
    pub fn new(every: u64, ring_capacity: usize, slowest_capacity: usize) -> Self {
        TraceSampler {
            every,
            decisions: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            ring_capacity: ring_capacity.max(1),
            slowest_capacity: slowest_capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            slowest: Mutex::new(Vec::new()),
        }
    }

    /// The sampling period (`0` = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Should the caller trace this query? One relaxed `fetch_add` plus a
    /// compare; never allocates. The first decision after construction
    /// samples (so a sampler is observable immediately), then every
    /// `every`-th after that.
    pub fn should_sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.decisions
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// Retain one finished sampled trace.
    pub fn record(&self, trace: QueryTrace) {
        self.sampled.fetch_add(1, Ordering::Relaxed);
        {
            let mut ring = self.ring.lock().expect("sampler ring lock poisoned");
            if ring.len() == self.ring_capacity {
                ring.pop_front();
            }
            ring.push_back(trace.clone());
        }
        let mut slowest = self
            .slowest
            .lock()
            .expect("sampler reservoir lock poisoned");
        if slowest.len() < self.slowest_capacity {
            slowest.push(trace);
            slowest.sort_by_key(|t| std::cmp::Reverse(t.elapsed_ns));
        } else if let Some(last) = slowest.last_mut() {
            // reservoir is full and sorted slowest-first: displace the
            // current fastest member if this trace is slower
            if trace.elapsed_ns > last.elapsed_ns {
                *last = trace;
                slowest.sort_by_key(|t| std::cmp::Reverse(t.elapsed_ns));
            }
        }
    }

    /// Sampled traces retained so far (monotonic; may exceed what the ring
    /// still holds).
    pub fn sampled_count(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// The most recent sampled traces, oldest first (bounded by the ring
    /// capacity).
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.ring
            .lock()
            .expect("sampler ring lock poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The slowest sampled traces since startup, slowest first.
    pub fn slowest(&self) -> Vec<QueryTrace> {
        self.slowest
            .lock()
            .expect("sampler reservoir lock poisoned")
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(elapsed_ns: u64) -> QueryTrace {
        QueryTrace {
            events: vec![],
            elapsed_ns,
        }
    }

    #[test]
    fn disabled_sampler_never_samples() {
        let sampler = TraceSampler::new(0, 8, 4);
        for _ in 0..100 {
            assert!(!sampler.should_sample());
        }
        assert_eq!(sampler.sampled_count(), 0);
        assert!(sampler.recent().is_empty());
    }

    #[test]
    fn samples_every_nth_decision() {
        let sampler = TraceSampler::new(4, 8, 4);
        let decisions: Vec<bool> = (0..12).map(|_| sampler.should_sample()).collect();
        assert_eq!(
            decisions,
            vec![true, false, false, false, true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn every_one_samples_everything() {
        let sampler = TraceSampler::new(1, 8, 4);
        assert!((0..10).all(|_| sampler.should_sample()));
    }

    #[test]
    fn ring_keeps_most_recent_traces() {
        let sampler = TraceSampler::new(1, 3, 2);
        for i in 0..5u64 {
            sampler.record(trace(i));
        }
        let recent: Vec<u64> = sampler.recent().iter().map(|t| t.elapsed_ns).collect();
        assert_eq!(recent, vec![2, 3, 4], "oldest evicted, order preserved");
        assert_eq!(sampler.sampled_count(), 5);
    }

    #[test]
    fn reservoir_keeps_the_slowest_k() {
        let sampler = TraceSampler::new(1, 16, 3);
        for elapsed in [5u64, 100, 1, 50, 200, 2, 75] {
            sampler.record(trace(elapsed));
        }
        let slowest: Vec<u64> = sampler.slowest().iter().map(|t| t.elapsed_ns).collect();
        assert_eq!(
            slowest,
            vec![200, 100, 75],
            "slowest-first, fastest displaced"
        );
    }

    #[test]
    fn concurrent_sampling_counts_exactly() {
        let sampler = std::sync::Arc::new(TraceSampler::new(8, 64, 8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sampler = std::sync::Arc::clone(&sampler);
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    for _ in 0..2000 {
                        if sampler.should_sample() {
                            sampler.record(trace(1));
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // 8000 decisions at 1-in-8: exactly 1000 sampled regardless of interleaving
        assert_eq!(total, 1000);
        assert_eq!(sampler.sampled_count(), 1000);
        assert_eq!(sampler.recent().len(), 64);
    }
}
