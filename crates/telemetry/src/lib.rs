//! Engine-wide observability primitives: a lock-free metrics registry and
//! per-query trace events.
//!
//! The paper's central claim is a *trajectory* — per-query cost falls as
//! cracking and merging refine the index as a side effect of queries. This
//! crate is the measurement substrate that makes the trajectory visible in a
//! *running* engine rather than only in offline bench binaries:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and log₂-bucket
//!   [`Histogram`]s. Registration takes a short lock once; every update is
//!   a single relaxed atomic RMW, so hot paths hold `Arc` handles and never
//!   contend. [`Registry::snapshot`] produces a serde-serializable,
//!   mergeable [`Snapshot`] with p50/p90/p99 readout.
//! * [`TraceRecorder`] / [`QueryTrace`] — one query's lifecycle as typed
//!   [`SpanEvent`]s (plan, index probe with refinement-effort delta,
//!   zone-map pruning, residual filter, materialize), with a human-readable
//!   text render.
//!
//! The crate is std-only and engine-agnostic: it knows the *vocabulary* of
//! the adaptive engine (pieces, refinement effort, pruning) but holds no
//! reference to any engine type, so every layer — core, WAL, server, bench
//! binaries — can record into the same structures.

#![deny(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, Registry,
    Snapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{QueryTrace, SpanEvent, TraceRecorder};
