//! Engine-wide observability primitives: a lock-free metrics registry and
//! per-query trace events.
//!
//! The paper's central claim is a *trajectory* — per-query cost falls as
//! cracking and merging refine the index as a side effect of queries. This
//! crate is the measurement substrate that makes the trajectory visible in a
//! *running* engine rather than only in offline bench binaries:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and log₂-bucket
//!   [`Histogram`]s. Registration takes a short lock once; every update is
//!   a single relaxed atomic RMW, so hot paths hold `Arc` handles and never
//!   contend. [`Registry::snapshot`] produces a serde-serializable,
//!   mergeable [`Snapshot`] with p50/p90/p99 readout.
//! * [`TraceRecorder`] / [`QueryTrace`] — one query's lifecycle as typed
//!   [`SpanEvent`]s (plan, index probe with refinement-effort delta,
//!   zone-map pruning, residual filter, materialize), with a human-readable
//!   text render.
//! * [`Reporter`] / [`SnapshotDelta`] — the continuous view: successive
//!   snapshots diffed into per-interval rates and *windowed* histogram
//!   quantiles, kept in a bounded ring. The convergence claim is about the
//!   derivative of refinement effort; this is where the derivative lives.
//! * [`TraceSampler`] — every-Nth-query tracing (one relaxed `fetch_add`
//!   on the unsampled path) feeding a recent-trace ring and a slowest-K
//!   reservoir, so a production server always has traces on hand.
//! * [`Snapshot::render_prometheus`] — Prometheus text exposition of any
//!   snapshot, for scrape-based monitoring via the server's `METRICS`
//!   opcode.
//! * [`AlertEngine`] / [`AlertRule`] — detection over the reporter's
//!   signal: declarative rules (counter rate, gauge level, windowed
//!   histogram quantile, health-verdict predicates) with
//!   for-N-consecutive-intervals semantics, a pending → firing → resolved
//!   state machine per rule, and a bounded transition journal. Firing
//!   rules hand an [`AlertAction`] back to the caller — the embedding
//!   engine is where self-healing happens.
//!
//! The crate is std-only and engine-agnostic: it knows the *vocabulary* of
//! the adaptive engine (pieces, refinement effort, pruning) but holds no
//! reference to any engine type, so every layer — core, WAL, server, bench
//! binaries — can record into the same structures.

#![deny(missing_docs)]

mod alert;
mod metrics;
mod prom;
mod report;
mod sample;
mod trace;

pub use alert::{
    AlertAction, AlertCondition, AlertConfig, AlertEngine, AlertEvent, AlertEventKind, AlertRule,
    AlertState, AlertStatus, FiredAlert, HealthSignal, DEFAULT_ALERT_JOURNAL_CAPACITY,
};
pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, Registry,
    Snapshot, HISTOGRAM_BUCKETS,
};
pub use prom::{escape_label_value, render_labeled_gauge, sanitize_metric_name, LabeledSample};
pub use report::{CounterDelta, GaugeDelta, Reporter, SnapshotDelta};
pub use sample::TraceSampler;
pub use trace::{QueryTrace, SpanEvent, TraceRecorder};
