//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stub. No `syn`/`quote` (the container is offline), so the item is parsed
//! directly from the `proc_macro` token stream.
//!
//! Supported shapes — exactly what this workspace defines:
//! * structs with named fields,
//! * enums whose variants are unit, newtype/tuple, or struct-like,
//! * no generic parameters.
//!
//! Generated encodings match serde's defaults (struct → object, enum →
//! externally tagged), so the JSON is byte-compatible with the real serde
//! for every type in the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed enum variant.
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({:?});", msg).parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skip any attributes (`# [ ... ]`) and a visibility modifier at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {:?}", other)),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {:?}", other)),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{}`",
                name
            ));
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1, // e.g. a where-clause token
            None => {
                return Err(format!(
                    "vendored serde_derive requires a braced body on `{}`",
                    name
                ))
            }
        }
    };
    let body: Vec<TokenTree> = body.stream().into_iter().collect();

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(&body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(&body)?,
        }),
        other => Err(format!("cannot derive serde traits for `{}` items", other)),
    }
}

/// Parse `name: Type, ...` out of a braced field list, returning the names.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {:?}", other)),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{}`, found {:?}",
                    field, other
                ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or off the end)
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {:?}", other)),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(tuple_arity(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Count top-level (angle-depth-0) comma-separated entries of a tuple body.
fn tuple_arity(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), \
                         ::serde::Serialize::to_value(&self.{}))",
                        f, f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::JsonValue {{\n\
                         ::serde::JsonValue::Obj(::std::vec![{entries}])\n\
                     }}\n\
                 }}",
                name = name,
                entries = entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::JsonValue {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                name = name,
                arms = arms.join("\n")
            )
        }
    }
}

fn serialize_arm(enum_name: &str, v: &Variant) -> String {
    let tag = format!("::std::string::String::from({:?})", v.name);
    match &v.shape {
        VariantShape::Unit => format!(
            "{}::{} => ::serde::JsonValue::Str({}),",
            enum_name, v.name, tag
        ),
        VariantShape::Tuple(1) => format!(
            "{}::{}(f0) => ::serde::JsonValue::Obj(::std::vec![({}, \
             ::serde::Serialize::to_value(f0))]),",
            enum_name, v.name, tag
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{}", i)).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({})", b))
                .collect();
            format!(
                "{}::{}({}) => ::serde::JsonValue::Obj(::std::vec![({}, \
                 ::serde::JsonValue::Arr(::std::vec![{}]))]),",
                enum_name,
                v.name,
                binds.join(", "),
                tag,
                vals.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), \
                         ::serde::Serialize::to_value({}))",
                        f, f
                    )
                })
                .collect();
            format!(
                "{}::{} {{ {} }} => ::serde::JsonValue::Obj(::std::vec![({}, \
                 ::serde::JsonValue::Obj(::std::vec![{}]))]),",
                enum_name,
                v.name,
                fields.join(", "),
                tag,
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f, field_from(name, f, "v")))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::JsonValue) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                name = name,
                inits = inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({}::{}),",
                        v.name, name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| deserialize_tagged_arm(name, v))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::JsonValue) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::JsonValue::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     ::std::format!(\"unknown {name} variant `{{}}`\", other))),\n\
                             }},\n\
                             ::serde::JsonValue::Obj(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::msg(\
                                         ::std::format!(\"unknown {name} variant `{{}}`\", other))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 ::std::format!(\"invalid {name} encoding: {{:?}}\", other))),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = name,
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    }
}

fn field_from(owner: &str, field: &str, source: &str) -> String {
    format!(
        "::serde::Deserialize::from_value({source}.get_field({field:?}).ok_or_else(|| \
         ::serde::Error::msg(::std::format!(\"missing field `{field}` in {owner}\")))?)?",
        source = source,
        field = field,
        owner = owner
    )
}

fn deserialize_tagged_arm(enum_name: &str, v: &Variant) -> String {
    match &v.shape {
        VariantShape::Unit => unreachable!("unit variants handled separately"),
        VariantShape::Tuple(1) => format!(
            "{:?} => ::std::result::Result::Ok({}::{}(\
             ::serde::Deserialize::from_value(inner)?)),",
            v.name, enum_name, v.name
        ),
        VariantShape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::Error::msg(\"tuple variant too short\"))?)?",
                        i = i
                    )
                })
                .collect();
            format!(
                "{tag:?} => match inner {{\n\
                     ::serde::JsonValue::Arr(items) => \
                         ::std::result::Result::Ok({e}::{v}({elems})),\n\
                     other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"expected array for {e}::{v}, found {{:?}}\", other))),\n\
                 }},",
                tag = v.name,
                e = enum_name,
                v = v.name,
                elems = elems.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f, field_from(enum_name, f, "inner")))
                .collect();
            format!(
                "{:?} => ::std::result::Result::Ok({}::{} {{ {} }}),",
                v.name,
                enum_name,
                v.name,
                inits.join(", ")
            )
        }
    }
}
