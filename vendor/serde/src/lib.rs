//! Vendored, API-compatible subset of `serde`.
//!
//! The build container cannot reach crates.io, so this crate supplies the
//! tiny slice of serde the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, serialized through the
//! sibling `serde_json` stub.
//!
//! Instead of serde's visitor architecture, values round-trip through a
//! self-describing [`JsonValue`] tree. Enum encoding matches serde's default
//! externally-tagged representation, so swapping the real serde back in
//! produces the same JSON for every type in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value tree, the data model both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (no decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<JsonValue>),
    /// JSON object as an ordered field list.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error raised by deserialization (and, rarely, serialization).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Construct an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`JsonValue`] data model.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> JsonValue;
}

/// Types that can be reconstructed from the [`JsonValue`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &JsonValue) -> Result<Self, Error>;
}

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &JsonValue) -> Result<Self, Error> {
                match v {
                    JsonValue::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("integer {} out of range", i))),
                    other => Err(Error::msg(format!(
                        "expected integer, found {:?}", other
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl Serialize for u64 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Int(*self as i64)
    }
}

impl Deserialize for u64 {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(Error::msg(format!("expected u64, found {:?}", other))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Float(f) => Ok(*f),
            JsonValue::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected number, found {:?}", other))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> JsonValue {
        JsonValue::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {:?}", other))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {:?}", other))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> JsonValue {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {:?}", other))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> JsonValue {
        match self {
            Some(x) => x.to_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> JsonValue {
                JsonValue::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &JsonValue) -> Result<Self, Error> {
                match v {
                    JsonValue::Arr(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_value(it.next().ok_or_else(|| {
                                Error::msg("tuple too short")
                            })?)?,
                        )+))
                    }
                    other => Err(Error::msg(format!(
                        "expected array for tuple, found {:?}", other
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);
