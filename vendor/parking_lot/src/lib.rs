//! Vendored, API-compatible subset of `parking_lot`.
//!
//! Wraps the std primitives with parking_lot's panic-free signatures
//! (`lock()` returns the guard directly). Poisoning is ignored, matching
//! parking_lot semantics: a lock held by a panicking thread is simply
//! re-acquired.

use std::sync;

/// Mutual exclusion primitive with parking_lot's `lock() -> Guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
