//! Vendored, API-compatible subset of `criterion`.
//!
//! The container is offline, so the bench targets link against this stub
//! instead of the real statistics engine. Benchmarks compile unchanged and,
//! when run, execute each routine for a small fixed number of timed
//! iterations and print a one-line median — enough to smoke-test the hot
//! paths and keep the bench code from bit-rotting, without criterion's
//! warm-up/outlier machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. Accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch on every iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (report flushing is a no-op in the stub).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: samples,
    };
    f(&mut bencher);
    let mut times = bencher.samples;
    times.sort_unstable();
    let median = times
        .get(times.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("bench: {:<60} median {:>12.3?}", label, median);
}

/// Measures the routine passed to [`Bencher::iter`] / [`Bencher::iter_batched`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
}

impl Bencher {
    /// Time a routine; its return value is black-boxed so work isn't
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters_per_sample {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time a routine whose input is rebuilt by `setup` outside the timed
    /// region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Define a bench group: `criterion_group! { name = g; config = ...; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        for n in [10usize, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n as u64).sum::<u64>())
            });
        }
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(5);
        targets = a_bench
    }

    #[test]
    fn group_macro_and_runner_execute() {
        smoke();
    }
}
