//! Vendored, API-compatible subset of `proptest`.
//!
//! Supports the surface this workspace's property tests use: range
//! strategies, tuple strategies, `prop::collection::vec`, the `proptest!`
//! macro with `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! seeded PRNG (every run explores the same cases — good for CI) and there
//! is no shrinking; a failing case panics with the values printed by the
//! assertion itself.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property against `cases` random inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// A recipe for producing random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// A strategy producing a fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mirror of the `proptest::prop` path exposed through the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Produce vectors whose elements come from `element` and whose
        /// length is drawn uniformly from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.gen_range(self.size.start..self.size.end)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Build the per-test deterministic RNG. Public for the macro's use.
pub fn rng_for_cases(test_name: &str) -> TestRng {
    // Stable per-test seed so distinct properties explore distinct inputs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

/// Assert a boolean condition inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn` body runs for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (
        $(#[test] fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $(#[test] fn $name($($pat in $strategy),+) $body)*);
    };
    (
        @expand ($cfg:expr);
        $(#[test] fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_cases(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in -5i64..5,
            v in prop::collection::vec(0u32..10, 0..20),
            (a, b) in (0usize..4, 0i64..=0),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!(a < 4);
            prop_assert_eq!(b, 0);
        }
    }
}
