//! JSON front end for the vendored serde stub: `to_string` / `from_str`
//! plus a small recursive-descent parser. Only what the workspace's
//! serialization round-trip tests and experiment harnesses need.

use serde::{Deserialize, Error, JsonValue, Serialize};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to a human-readable, indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::Float(f) => write_float(*f, out),
        JsonValue::Str(s) => write_string(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &JsonValue, out: &mut String, indent: usize) {
    match v {
        JsonValue::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's shortest-roundtrip formatting; ensure a decimal point so the
        // value re-parses as a float-shaped literal where it matters.
        let s = format!("{}", f);
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON cannot represent NaN/inf; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::msg(format!("bad escape {:?}", other))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| Error::msg(format!("bad number `{}`", text)))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(JsonValue::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(JsonValue::Float)
                    .map_err(|_| Error::msg(format!("bad number `{}`", text))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        label: String,
        costs: Vec<f64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Unit,
        Newtype(i64),
        Pair(i64, String),
        Struct { run_size: usize },
    }

    #[test]
    fn struct_roundtrip() {
        let v = Nested {
            label: "crack \"fast\"\n".to_owned(),
            costs: vec![1.0, 0.25, -3.5, 1e300],
        };
        let json = crate::to_string(&v).unwrap();
        let back: Nested = crate::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn enum_roundtrips_match_serde_encoding() {
        for (v, expected) in [
            (Mixed::Unit, r#""Unit""#.to_owned()),
            (Mixed::Newtype(-7), r#"{"Newtype":-7}"#.to_owned()),
            (
                Mixed::Pair(1, "x".to_owned()),
                r#"{"Pair":[1,"x"]}"#.to_owned(),
            ),
            (
                Mixed::Struct { run_size: 64 },
                r#"{"Struct":{"run_size":64}}"#.to_owned(),
            ),
        ] {
            let json = crate::to_string(&v).unwrap();
            assert_eq!(json, expected);
            let back: Mixed = crate::from_str(&json).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Nested {
            label: "s".to_owned(),
            costs: vec![2.0],
        };
        let json = crate::to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Nested = crate::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
