//! Vendored, API-compatible subset of the `rand` crate (v0.8 surface).
//!
//! The build container has no network access to crates.io, so the workspace
//! ships this minimal deterministic implementation of exactly the surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically strong
//! enough for workload generation and fully deterministic for a given seed,
//! which is all the test suite and experiment harnesses require.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Create a new PRNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Generate a random value in the given range (`low..high` or
    /// `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Generate a random `bool` with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`. Requires `low < high`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`. Requires `low <= high`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty inclusive range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        // 53 uniformly random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range called with empty inclusive range");
        // 53 random mantissa bits scaled into [0, 1] (both ends reachable).
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draw one sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Pseudo-random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for `rand`'s
    /// `StdRng`. Same seed, same stream — on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix_next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix_next(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Pick one element uniformly at random, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&i));
            let g: f64 = rng.gen_range(-2.0..=-1.0);
            assert!((-2.0..=-1.0).contains(&g));
        }
        // Degenerate inclusive ranges are valid and must not panic,
        // including at negative bounds where naive bit-increment tricks
        // move the wrong way.
        assert_eq!(rng.gen_range(-1.0..=-1.0), -1.0);
        assert_eq!(rng.gen_range(5..=5), 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }
}
